#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <tuple>

#include "lp/simplex_impl.hpp"

namespace pmcast::lp {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
    case SolveStatus::Numerical: return "numerical";
    case SolveStatus::Aborted: return "aborted";
    case SolveStatus::CutoffReached: return "cutoff-reached";
  }
  return "?";
}

namespace detail {

Simplex::Simplex(const Model& model, const SolverOptions& opt)
    : opt_(opt),
      m_(model.num_rows()),
      n_(model.num_vars()),
      nt_(m_ + n_) {
  build(model);
}

void Simplex::build(const Model& model) {
  sense_sign_ = (model.sense() == Sense::Minimize) ? 1.0 : -1.0;

  lb_.resize(static_cast<size_t>(nt_));
  ub_.resize(static_cast<size_t>(nt_));
  cost_.assign(static_cast<size_t>(nt_), 0.0);

  // Compress the model triplets into CSC (duplicates summed). Logical
  // columns are implicit (-e_i), never stored.
  mat_.clear();
  std::vector<Model::Entry> entries = model.entries();
  entries_seen_ = entries.size();
  CscMatrix::sort_entries(entries);
  mat_.append_sorted(entries, n_);

  row_scale_.assign(static_cast<size_t>(m_), 1.0);
  col_scale_.assign(static_cast<size_t>(n_), 1.0);
  if (opt_.scale) compute_scaling();
  load_bounds_and_costs(model);
  reset_to_logical_basis();

  max_iters_ = opt_.max_iterations > 0 ? opt_.max_iterations
                                       : 20000 + 40 * (m_ + n_);
}

void Simplex::compute_scaling() {
  // Geometric-mean equilibration, two sweeps, O(nnz) per sweep. Depends
  // only on the entry values, so the scales stay valid across
  // refresh_data() reloads. The row pass computes every row factor from
  // the pre-sweep values before touching any entry, then multiplies each
  // entry once — the same products, in the same per-entry order, as the
  // historical row-at-a-time loop, so the scaled matrix is bit-identical.
  const std::int64_t nnz = mat_.nnz();
  std::vector<double> srow(static_cast<size_t>(m_));
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::vector<double> rmin(static_cast<size_t>(m_), kInf);
    std::vector<double> rmax(static_cast<size_t>(m_), 0.0);
    for (std::int64_t k = 0; k < nnz; ++k) {
      double a = std::fabs(mat_.value(k));
      auto r = static_cast<size_t>(mat_.row(k));
      rmin[r] = std::min(rmin[r], a);
      rmax[r] = std::max(rmax[r], a);
    }
    for (int i = 0; i < m_; ++i) {
      auto si = static_cast<size_t>(i);
      srow[si] = 1.0;
      if (rmax[si] <= 0.0) continue;
      double s = 1.0 / std::sqrt(rmin[si] * rmax[si]);
      if (!std::isfinite(s) || s <= 0.0) continue;
      row_scale_[si] *= s;
      srow[si] = s;
    }
    for (std::int64_t k = 0; k < nnz; ++k) {
      mat_.value_ref(k) *= srow[static_cast<size_t>(mat_.row(k))];
    }
    for (int j = 0; j < n_; ++j) {
      double cmin = kInf, cmax = 0.0;
      for (std::int64_t k = mat_.col_begin(j); k < mat_.col_end(j); ++k) {
        double a = std::fabs(mat_.value(k));
        cmin = std::min(cmin, a);
        cmax = std::max(cmax, a);
      }
      if (cmax <= 0.0) continue;
      double s = 1.0 / std::sqrt(cmin * cmax);
      if (!std::isfinite(s) || s <= 0.0) continue;
      col_scale_[static_cast<size_t>(j)] *= s;
      for (std::int64_t k = mat_.col_begin(j); k < mat_.col_end(j); ++k) {
        mat_.value_ref(k) *= s;
      }
    }
  }
}

void Simplex::load_bounds_and_costs(const Model& model) {
  // Substitution x_j = col_scale_j * x'_j with every row multiplied by its
  // scale: variable bounds shrink by the column scale, costs grow by it;
  // logical bounds grow by the row scale.
  sense_sign_ = (model.sense() == Sense::Minimize) ? 1.0 : -1.0;
  for (int j = 0; j < n_; ++j) {
    auto sj = static_cast<size_t>(j);
    double s = col_scale_[sj];
    double lo = model.var_lb(j), hi = model.var_ub(j);
    lb_[sj] = std::isfinite(lo) ? lo / s : lo;
    ub_[sj] = std::isfinite(hi) ? hi / s : hi;
    cost_[sj] = sense_sign_ * model.obj(j) * s;
  }
  for (int i = 0; i < m_; ++i) {
    auto si = static_cast<size_t>(i);
    auto j = static_cast<size_t>(n_ + i);
    double s = row_scale_[si];
    double lo = model.row_lo(i), hi = model.row_hi(i);
    lb_[j] = std::isfinite(lo) ? lo * s : lo;
    ub_[j] = std::isfinite(hi) ? hi * s : hi;
  }
}

void Simplex::reset_to_logical_basis() {
  // Initial point: structurals nonbasic at a finite bound, logicals basic.
  status_.assign(static_cast<size_t>(nt_), kNonbasicLower);
  value_.assign(static_cast<size_t>(nt_), 0.0);
  basic_pos_.assign(static_cast<size_t>(nt_), -1);
  basic_.resize(static_cast<size_t>(m_));
  for (int j = 0; j < n_; ++j) {
    auto sj = static_cast<size_t>(j);
    if (std::isfinite(lb_[sj])) {
      status_[sj] = kNonbasicLower;
      value_[sj] = lb_[sj];
    } else if (std::isfinite(ub_[sj])) {
      status_[sj] = kNonbasicUpper;
      value_[sj] = ub_[sj];
    } else {
      status_[sj] = kNonbasicFree;
      value_[sj] = 0.0;
    }
  }
  for (int i = 0; i < m_; ++i) {
    int j = n_ + i;
    basic_[static_cast<size_t>(i)] = j;
    basic_pos_[static_cast<size_t>(j)] = i;
    status_[static_cast<size_t>(j)] = kBasic;
  }
  factorized_ = false;
}

bool Simplex::load_basis(const Basis& basis) {
  if (!basis.shaped_for(n_, m_)) return false;
  int basics = 0;
  for (int j = 0; j < nt_; ++j) {
    if (basis.status[static_cast<size_t>(j)] == kBasic) ++basics;
  }
  if (basics != m_) return false;

  status_ = basis.status;
  value_.assign(static_cast<size_t>(nt_), 0.0);
  basic_pos_.assign(static_cast<size_t>(nt_), -1);
  basic_.clear();
  basic_.reserve(static_cast<size_t>(m_));
  for (int j = 0; j < nt_; ++j) {
    auto sj = static_cast<size_t>(j);
    if (status_[sj] == kBasic) {
      basic_pos_[sj] = static_cast<int>(basic_.size());
      basic_.push_back(j);
      continue;
    }
    // Re-seat nonbasics on the current model's bounds; a snapshot status
    // that no longer matches a finite bound degrades gracefully.
    if (status_[sj] == kNonbasicLower && std::isfinite(lb_[sj])) {
      value_[sj] = lb_[sj];
    } else if (status_[sj] == kNonbasicUpper && std::isfinite(ub_[sj])) {
      value_[sj] = ub_[sj];
    } else if (std::isfinite(lb_[sj])) {
      status_[sj] = kNonbasicLower;
      value_[sj] = lb_[sj];
    } else if (std::isfinite(ub_[sj])) {
      status_[sj] = kNonbasicUpper;
      value_[sj] = ub_[sj];
    } else {
      status_[sj] = kNonbasicFree;
      value_[sj] = 0.0;
    }
  }
  if (!reinvert()) return false;
  compute_basic_values();
  return true;
}

Basis Simplex::basis() const {
  Basis out;
  out.status = status_;
  return out;
}

void Simplex::refresh_data(const Model& model) {
  assert(model.num_vars() == n_ && model.num_rows() == m_);
  load_bounds_and_costs(model);
  for (int j = 0; j < nt_; ++j) {
    auto sj = static_cast<size_t>(j);
    if (status_[sj] == kBasic) continue;
    if (status_[sj] == kNonbasicLower && std::isfinite(lb_[sj])) {
      value_[sj] = lb_[sj];
    } else if (status_[sj] == kNonbasicUpper && std::isfinite(ub_[sj])) {
      value_[sj] = ub_[sj];
    } else if (std::isfinite(lb_[sj])) {
      status_[sj] = kNonbasicLower;
      value_[sj] = lb_[sj];
    } else if (std::isfinite(ub_[sj])) {
      status_[sj] = kNonbasicUpper;
      value_[sj] = ub_[sj];
    } else {
      status_[sj] = kNonbasicFree;
      value_[sj] = 0.0;
    }
  }
  if (factorized_) {
    // Basis matrix unchanged (entries identical), eta file still inverts
    // it: only the basic values move with the new nonbasic seats.
    compute_basic_values();
  }
}

bool Simplex::append_columns(const Model& model) {
  if (model.num_rows() != m_ || model.num_vars() < n_) return false;
  const int new_n = model.num_vars();
  const int add = new_n - n_;
  const auto& all = model.entries();
  if (all.size() < entries_seen_) return false;
  // Entries are append-only in a Model, so everything past the high-water
  // mark belongs to the new columns — anything older that changed would
  // have bumped the caller's structure version instead of landing here.
  std::vector<Model::Entry> tail(all.begin() + static_cast<std::ptrdiff_t>(
                                                   entries_seen_),
                                 all.end());
  for (const Model::Entry& e : tail) {
    if (e.var < n_ || e.var >= new_n || e.row < 0 || e.row >= m_) {
      return false;  // touches pre-existing columns: rebuild cold
    }
  }
  if (add == 0) {
    entries_seen_ = all.size();
    return tail.empty();
  }

  // Compress the new columns. Row scales are fixed (they depend on the
  // rows, which did not change); each new column gets one fresh
  // geometric-mean equilibration pass of its own — not the two interleaved
  // sweeps a from-scratch build would run, which only affects
  // conditioning, never the solution.
  CscMatrix::sort_entries(tail);
  for (Model::Entry& e : tail) {
    e.value *= row_scale_[static_cast<size_t>(e.row)];
  }
  const int old_cols = mat_.num_cols();
  mat_.append_sorted(tail, add);
  for (int c = 0; c < add; ++c) {
    const int j = old_cols + c;
    double s = 1.0;
    if (opt_.scale) {
      double cmin = kInf, cmax = 0.0;
      for (std::int64_t k = mat_.col_begin(j); k < mat_.col_end(j); ++k) {
        double a = std::fabs(mat_.value(k));
        cmin = std::min(cmin, a);
        cmax = std::max(cmax, a);
      }
      if (cmax > 0.0) {
        double cand = 1.0 / std::sqrt(cmin * cmax);
        if (std::isfinite(cand) && cand > 0.0) s = cand;
      }
    }
    col_scale_.push_back(s);
    if (s != 1.0) {
      for (std::int64_t k = mat_.col_begin(j); k < mat_.col_end(j); ++k) {
        mat_.value_ref(k) *= s;
      }
    }
  }
  entries_seen_ = all.size();

  // Open `add` structural slots at index n_: the per-variable arrays shift
  // their logical tails up, basic row->var entries pointing at logicals
  // move up with them, and basic_pos_ stays aligned because it is indexed
  // by variable. Keeping structurals-first is load-bearing: Bland's rule
  // and the reinversion orderings break ties by variable index, and
  // renumbering existing variables would perturb pinned pivot sequences.
  auto at = [&](auto& vec) { return vec.begin() + n_; };
  lb_.insert(at(lb_), static_cast<size_t>(add), 0.0);
  ub_.insert(at(ub_), static_cast<size_t>(add), 0.0);
  cost_.insert(at(cost_), static_cast<size_t>(add), 0.0);
  value_.insert(at(value_), static_cast<size_t>(add), 0.0);
  status_.insert(at(status_), static_cast<size_t>(add), kNonbasicLower);
  basic_pos_.insert(at(basic_pos_), static_cast<size_t>(add), -1);
  if (!devex_w_.empty()) {
    devex_w_.insert(devex_w_.begin() + n_, static_cast<size_t>(add), 1.0);
  }
  for (int& b : basic_) {
    if (b >= n_) b += add;
  }
  n_ = new_n;
  nt_ = n_ + m_;
  if (opt_.max_iterations <= 0) max_iters_ = 20000 + 40 * (m_ + n_);

  // Seat the new columns nonbasic on a finite bound (refresh_data will
  // re-derive the exact values from the model it is handed next).
  for (int j = new_n - add; j < new_n; ++j) {
    auto sj = static_cast<size_t>(j);
    double s = col_scale_[sj];
    double lo = model.var_lb(j), hi = model.var_ub(j);
    lb_[sj] = std::isfinite(lo) ? lo / s : lo;
    ub_[sj] = std::isfinite(hi) ? hi / s : hi;
    cost_[sj] = sense_sign_ * model.obj(j) * s;
    if (std::isfinite(lb_[sj])) {
      status_[sj] = kNonbasicLower;
      value_[sj] = lb_[sj];
    } else if (std::isfinite(ub_[sj])) {
      status_[sj] = kNonbasicUpper;
      value_[sj] = ub_[sj];
    } else {
      status_[sj] = kNonbasicFree;
      value_[sj] = 0.0;
    }
  }
  return true;
}

bool Simplex::reinvert() {
  etas_.clear();
  factorized_ = false;
  std::vector<int> vars = basic_;
  // Logical columns first (their etas are singletons), then structurals by
  // ascending column count to curb fill-in.
  std::sort(vars.begin(), vars.end(), [&](int a, int b) {
    bool la = a >= n_, lbv = b >= n_;
    if (la != lbv) return la;
    size_t na = col_nnz(a);
    size_t nb = col_nnz(b);
    if (na != nb) return na < nb;
    return a < b;
  });

  std::vector<char> pivoted(static_cast<size_t>(m_), 0);
  std::vector<int> new_basic(static_cast<size_t>(m_), -1);
  std::vector<double> w(static_cast<size_t>(m_), 0.0);
  std::vector<int> pat;
  std::vector<char> mark(static_cast<size_t>(m_), 0);
  std::vector<int> dropped;
  const bool sparse = opt_.sparse_ftran;

  auto pivot_column = [&](int var) -> bool {
    int best = -1;
    double best_abs = opt_.pivot_tol;
    Eta e;
    if (sparse) {
      // Clear only what the previous column touched, then FTRAN over the
      // tracked pattern. Sorting the pattern reproduces the dense loop's
      // ascending-row scans (pivot choice and eta layout are identical).
      for (int i : pat) {
        w[static_cast<size_t>(i)] = 0.0;
        mark[static_cast<size_t>(i)] = 0;
      }
      pat.clear();
      scatter_column_pattern(var, w, pat, mark);
      ftran_sparse(w, pat, mark);
      std::sort(pat.begin(), pat.end());
      for (int i : pat) {
        if (pivoted[static_cast<size_t>(i)]) continue;
        double a = std::fabs(w[static_cast<size_t>(i)]);
        if (a > best_abs) {
          best_abs = a;
          best = i;
        }
      }
      if (best < 0) return false;
      e.r = best;
      e.pivot = w[static_cast<size_t>(best)];
      for (int i : pat) {
        double v = w[static_cast<size_t>(i)];
        if (i != best && std::fabs(v) > kDropTol) {
          e.idx.push_back(i);
          e.val.push_back(v);
        }
      }
    } else {
      std::fill(w.begin(), w.end(), 0.0);
      scatter_column(var, w);
      ftran(w);
      for (int i = 0; i < m_; ++i) {
        if (pivoted[static_cast<size_t>(i)]) continue;
        double a = std::fabs(w[static_cast<size_t>(i)]);
        if (a > best_abs) {
          best_abs = a;
          best = i;
        }
      }
      if (best < 0) return false;
      e.r = best;
      e.pivot = w[static_cast<size_t>(best)];
      for (int i = 0; i < m_; ++i) {
        double v = w[static_cast<size_t>(i)];
        if (i != best && std::fabs(v) > kDropTol) {
          e.idx.push_back(i);
          e.val.push_back(v);
        }
      }
    }
    etas_.push_back(std::move(e));
    pivoted[static_cast<size_t>(best)] = 1;
    new_basic[static_cast<size_t>(best)] = var;
    return true;
  };

  for (int var : vars) {
    if (!pivot_column(var)) dropped.push_back(var);
  }
  // Basis repair: replace numerically dependent columns with the logical of
  // a still-unpivoted row.
  for (int var : dropped) {
    int row = -1;
    for (int i = 0; i < m_; ++i) {
      if (!pivoted[static_cast<size_t>(i)]) {
        row = i;
        break;
      }
    }
    if (row < 0) return false;
    auto sv = static_cast<size_t>(var);
    // Demote the dependent variable to the nearest finite bound.
    basic_pos_[sv] = -1;
    if (std::isfinite(lb_[sv]) &&
        (!std::isfinite(ub_[sv]) ||
         std::fabs(value_[sv] - lb_[sv]) <= std::fabs(value_[sv] - ub_[sv]))) {
      status_[sv] = kNonbasicLower;
      value_[sv] = lb_[sv];
    } else if (std::isfinite(ub_[sv])) {
      status_[sv] = kNonbasicUpper;
      value_[sv] = ub_[sv];
    } else {
      status_[sv] = kNonbasicFree;
      value_[sv] = 0.0;
    }
    int logical = n_ + row;
    if (basic_pos_[static_cast<size_t>(logical)] >= 0) return false;
    if (!pivot_column(logical)) return false;
    status_[static_cast<size_t>(logical)] = kBasic;
  }

  basic_ = new_basic;
  for (int i = 0; i < m_; ++i) {
    basic_pos_[static_cast<size_t>(basic_[static_cast<size_t>(i)])] = i;
  }
  etas_base_ = etas_.size();
  base_nnz_ = 0;
  for (const Eta& e : etas_) base_nnz_ += e.idx.size() + 1;
  update_nnz_ = 0;
  factorized_ = true;
  return true;
}

void Simplex::compute_basic_values() {
  std::vector<double> rhs(static_cast<size_t>(m_), 0.0);
  for (int j = 0; j < nt_; ++j) {
    auto sj = static_cast<size_t>(j);
    if (status_[sj] == kBasic) continue;
    double v = value_[sj];
    if (v == 0.0) continue;
    if (j >= n_) {
      rhs[static_cast<size_t>(j - n_)] += v;  // logical column is -e_i
      continue;
    }
    for (std::int64_t k = mat_.col_begin(j); k < mat_.col_end(j); ++k) {
      rhs[static_cast<size_t>(mat_.row(k))] -= mat_.value(k) * v;
    }
  }
  ftran(rhs);
  for (int i = 0; i < m_; ++i) {
    value_[static_cast<size_t>(basic_[static_cast<size_t>(i)])] =
        rhs[static_cast<size_t>(i)];
  }
}

double Simplex::total_infeasibility() const {
  double sum = 0.0;
  for (int i = 0; i < m_; ++i) {
    auto j = static_cast<size_t>(basic_[static_cast<size_t>(i)]);
    double v = value_[j];
    if (v < lb_[j]) sum += lb_[j] - v;
    if (v > ub_[j]) sum += v - ub_[j];
  }
  return sum;
}

Simplex::Pricing Simplex::price(const std::vector<double>& y,
                                bool phase1) const {
  // Eligibility (|d| beyond opt_tol) is rule-independent; only the score
  // changes: Dantzig ranks by |d|, devex by d^2 over the reference weight.
  // Bland's fallback overrides both (lowest eligible index, termination
  // guarantee).
  const bool devex = opt_.pricing == PricingRule::Devex && !bland_ &&
                     devex_w_.size() == static_cast<size_t>(nt_);
  Pricing best;
  for (int j = 0; j < nt_; ++j) {
    auto sj = static_cast<size_t>(j);
    signed char st = status_[sj];
    if (st == kBasic) continue;
    if (is_fixed(j)) continue;
    double cj = phase1 ? 0.0 : cost_[sj];
    double d = cj - dot_column(j, y);
    double score = 0.0;
    int dir = 0;
    if (st == kNonbasicLower) {
      if (d < -opt_.opt_tol) {
        score = -d;
        dir = +1;
      }
    } else if (st == kNonbasicUpper) {
      if (d > opt_.opt_tol) {
        score = d;
        dir = -1;
      }
    } else {  // free
      if (d < -opt_.opt_tol) {
        score = -d;
        dir = +1;
      } else if (d > opt_.opt_tol) {
        score = d;
        dir = -1;
      }
    }
    if (dir == 0) continue;
    if (bland_) return Pricing{j, dir, score};  // lowest index wins
    if (devex) score = score * score / devex_w_[sj];
    if (score > best.score) best = Pricing{j, dir, score};
  }
  return best;
}

void Simplex::update_devex(int enter, int leave_pos,
                           const std::vector<double>& w) {
  const double aq = w[static_cast<size_t>(leave_pos)];
  if (aq == 0.0) return;
  auto se = static_cast<size_t>(enter);
  const double gq = std::max(devex_w_[se], 1.0);
  // alpha_rj for every nonbasic j via one BTRAN of e_r (pre-pivot basis).
  std::vector<double> rho(static_cast<size_t>(m_), 0.0);
  rho[static_cast<size_t>(leave_pos)] = 1.0;
  btran(rho);
  double wmax = 1.0;
  for (int j = 0; j < nt_; ++j) {
    auto sj = static_cast<size_t>(j);
    if (status_[sj] == kBasic || j == enter) continue;
    double arj = dot_column(j, rho);
    if (arj == 0.0) continue;
    double ratio = arj / aq;
    double cand = ratio * ratio * gq;
    if (cand > devex_w_[sj]) devex_w_[sj] = cand;
    wmax = std::max(wmax, devex_w_[sj]);
  }
  // The leaving variable's weight in the post-pivot frame.
  auto lj = static_cast<size_t>(basic_[static_cast<size_t>(leave_pos)]);
  devex_w_[lj] = std::max(gq / (aq * aq), 1.0);
  // Reference-framework reset: once the weights have drifted far from the
  // frame they were measured in, they stop approximating steepest edge.
  if (wmax > 1e10 || devex_w_[lj] > 1e10) reset_devex();
}

Simplex::Ratio Simplex::ratio_test(int enter, int direction,
                                   const std::vector<double>& w, bool phase1,
                                   const std::vector<int>* pat) const {
  Ratio r;
  auto se = static_cast<size_t>(enter);
  double best = kInf;
  if (std::isfinite(lb_[se]) && std::isfinite(ub_[se])) {
    best = ub_[se] - lb_[se];  // bound flip distance
    r.bound_flip = true;
  }
  double best_pivot = 0.0;
  const double sigma = static_cast<double>(direction);
  // Visit rows in ascending order either way (positions the dense scan
  // would skip as zero are exactly the ones absent from the pattern), so
  // the non-Bland near-tie rule and Bland's index rule break ties
  // identically on both paths.
  const std::size_t count = pat ? pat->size() : static_cast<size_t>(m_);
  for (std::size_t pi = 0; pi < count; ++pi) {
    const int p = pat ? (*pat)[pi] : static_cast<int>(pi);
    double wp = w[static_cast<size_t>(p)];
    if (std::fabs(wp) <= opt_.pivot_tol) continue;
    auto j = static_cast<size_t>(basic_[static_cast<size_t>(p)]);
    double v = value_[j];
    double rate = -sigma * wp;  // dv/dt of this basic variable
    double limit = kInf;
    signed char land = kNonbasicLower;
    const bool above = v > ub_[j] + opt_.feas_tol;
    const bool below = v < lb_[j] - opt_.feas_tol;
    if (phase1 && above) {
      if (rate < 0.0) {
        limit = (v - ub_[j]) / -rate;
        land = kNonbasicUpper;
      }
    } else if (phase1 && below) {
      if (rate > 0.0) {
        limit = (lb_[j] - v) / rate;
        land = kNonbasicLower;
      }
    } else {
      if (rate > 0.0 && std::isfinite(ub_[j])) {
        limit = (ub_[j] - v) / rate;
        land = kNonbasicUpper;
      } else if (rate < 0.0 && std::isfinite(lb_[j])) {
        limit = (v - lb_[j]) / -rate;
        land = kNonbasicLower;
      }
    }
    if (limit == kInf) continue;
    limit = std::max(limit, 0.0);
    bool take;
    if (bland_) {
      // Bland: strictly smaller step, or equal step with smaller var index.
      take = limit < best - 1e-12 ||
             (!r.bound_flip && r.leave_pos >= 0 && limit <= best + 1e-12 &&
              basic_[static_cast<size_t>(p)] <
                  basic_[static_cast<size_t>(r.leave_pos)]);
      if (r.bound_flip && limit <= best) take = true;
    } else {
      // Prefer clearly smaller steps; on near-ties keep the largest pivot.
      take = limit < best - 1e-9 ||
             (limit <= best + 1e-9 && std::fabs(wp) > best_pivot);
    }
    if (take) {
      best = limit;
      best_pivot = std::fabs(wp);
      r.leave_pos = p;
      r.leave_status = land;
      r.bound_flip = false;
    }
  }
  if (best == kInf) {
    r.unbounded = true;
    return r;
  }
  r.step = best;
  return r;
}

void Simplex::apply_step(int enter, int direction, const Ratio& r,
                         std::vector<double>& w,
                         const std::vector<int>* pat) {
  auto se = static_cast<size_t>(enter);
  const double sigma = static_cast<double>(direction);
  const double t = r.step;
  if (t != 0.0) {
    const std::size_t count = pat ? pat->size() : static_cast<size_t>(m_);
    for (std::size_t pi = 0; pi < count; ++pi) {
      const int p = pat ? (*pat)[pi] : static_cast<int>(pi);
      double wp = w[static_cast<size_t>(p)];
      if (wp == 0.0) continue;
      auto j = static_cast<size_t>(basic_[static_cast<size_t>(p)]);
      value_[j] -= sigma * t * wp;
    }
  }
  if (r.bound_flip) {
    value_[se] += sigma * t;
    status_[se] = (direction > 0) ? kNonbasicUpper : kNonbasicLower;
    value_[se] = (direction > 0) ? ub_[se] : lb_[se];
    return;
  }
  // Pivot: `enter` becomes basic at position r.leave_pos.
  int p = r.leave_pos;
  auto lj = static_cast<size_t>(basic_[static_cast<size_t>(p)]);
  status_[lj] = r.leave_status;
  value_[lj] = (r.leave_status == kNonbasicUpper) ? ub_[lj] : lb_[lj];
  basic_pos_[lj] = -1;

  value_[se] += sigma * t;
  status_[se] = kBasic;
  basic_[static_cast<size_t>(p)] = enter;
  basic_pos_[se] = p;

  Eta e;
  e.r = p;
  e.pivot = w[static_cast<size_t>(p)];
  const std::size_t count = pat ? pat->size() : static_cast<size_t>(m_);
  for (std::size_t pi = 0; pi < count; ++pi) {
    const int i = pat ? (*pat)[pi] : static_cast<int>(pi);
    double v = w[static_cast<size_t>(i)];
    if (i != p && std::fabs(v) > kDropTol) {
      e.idx.push_back(i);
      e.val.push_back(v);
    }
  }
  update_nnz_ += e.idx.size() + 1;
  etas_.push_back(std::move(e));
}

Simplex::LoopResult Simplex::iterate(bool phase1) {
  std::vector<double> y(static_cast<size_t>(m_));
  std::vector<double> w(static_cast<size_t>(m_), 0.0);
  const bool sparse = opt_.sparse_ftran;
  std::vector<int> pat;
  std::vector<char> mark(static_cast<size_t>(m_), 0);
  const int poll_every = opt_.checkpoint_every > 0 ? opt_.checkpoint_every : 32;
  int until_poll = opt_.checkpoint ? poll_every : -1;
  while (true) {
    if (iterations_ >= max_iters_) return LoopResult::IterLimit;
    if (until_poll >= 0 && --until_poll < 0) {
      until_poll = poll_every;
      switch (opt_.checkpoint()) {
        case CheckpointAction::Continue: break;
        case CheckpointAction::Abort: return LoopResult::Aborted;
        case CheckpointAction::Cutoff: return LoopResult::Cutoff;
      }
    }
    if (phase1 && total_infeasibility() <= opt_.feas_tol) {
      return LoopResult::Converged;
    }
    // Dual vector for pricing: y = B^-T c_B (phase-1 costs are the
    // violation signs of the basic variables).
    std::fill(y.begin(), y.end(), 0.0);
    for (int p = 0; p < m_; ++p) {
      auto j = static_cast<size_t>(basic_[static_cast<size_t>(p)]);
      double c;
      if (phase1) {
        double v = value_[j];
        c = (v > ub_[j] + opt_.feas_tol)   ? 1.0
            : (v < lb_[j] - opt_.feas_tol) ? -1.0
                                           : 0.0;
      } else {
        c = cost_[j];
      }
      y[static_cast<size_t>(p)] = c;
    }
    btran(y);

    Pricing pr = price(y, phase1);
    if (pr.direction == 0) {
      if (phase1 && total_infeasibility() > opt_.feas_tol) {
        return LoopResult::Converged;  // converged-but-infeasible; caller checks
      }
      return LoopResult::Converged;
    }

    const std::vector<int>* wpat = nullptr;
    if (sparse) {
      for (int i : pat) {
        w[static_cast<size_t>(i)] = 0.0;
        mark[static_cast<size_t>(i)] = 0;
      }
      pat.clear();
      scatter_column_pattern(pr.var, w, pat, mark);
      ftran_sparse(w, pat, mark);
      std::sort(pat.begin(), pat.end());
      wpat = &pat;
    } else {
      std::fill(w.begin(), w.end(), 0.0);
      scatter_column(pr.var, w);
      ftran(w);
    }

    Ratio r = ratio_test(pr.var, pr.direction, w, phase1, wpat);
    if (r.unbounded) {
      return phase1 ? LoopResult::Numerical : LoopResult::Unbounded;
    }
    if (opt_.pricing == PricingRule::Devex && !r.bound_flip &&
        devex_w_.size() == static_cast<size_t>(nt_)) {
      update_devex(pr.var, r.leave_pos, w);
    }
    apply_step(pr.var, pr.direction, r, w, wpat);
    ++iterations_;

    if (r.step <= 1e-10) {
      if (++degenerate_run_ > 500) bland_ = true;
    } else {
      degenerate_run_ = 0;
      bland_ = false;
    }

    // Reinvert when the update etas start to dominate the FTRAN/BTRAN cost
    // (their fill is what actually grows — pivot columns become dense as
    // the eta file lengthens) or at the hard count cap.
    bool too_dense = update_nnz_ > std::max(base_nnz_,
                                            8 * static_cast<size_t>(m_));
    if (too_dense || etas_.size() - etas_base_ >=
                         static_cast<size_t>(opt_.refactor_every)) {
      if (!reinvert()) return LoopResult::Numerical;
      compute_basic_values();
    }
  }
}

Solution Simplex::run(const Model& model) {
  Solution sol;
  sol.x.assign(static_cast<size_t>(n_), 0.0);
  sol.row_value.assign(static_cast<size_t>(m_), 0.0);
  sol.dual.assign(static_cast<size_t>(m_), 0.0);

  iterations_ = 0;
  degenerate_run_ = 0;
  bland_ = false;
  // Each run opens a fresh devex reference framework.
  if (opt_.pricing == PricingRule::Devex) reset_devex();

  if (!factorized_) {
    if (!reinvert()) {
      sol.status = SolveStatus::Numerical;
      return sol;
    }
    compute_basic_values();
  }

  auto fail = [&](SolveStatus st) {
    sol.status = st;
    sol.iterations = iterations_;
    return sol;
  };

  // Phase 1 (only if the start point is out of bounds — a cold logical
  // start, or a warm basis whose bounds moved). One retry after a
  // reinversion absorbs mild numerical drift; a persistent residual means
  // the model is genuinely infeasible.
  for (int attempt = 0; attempt < 2 && total_infeasibility() > opt_.feas_tol;
       ++attempt) {
    LoopResult lr = iterate(/*phase1=*/true);
    if (lr == LoopResult::IterLimit) return fail(SolveStatus::IterationLimit);
    if (lr == LoopResult::Aborted) return fail(SolveStatus::Aborted);
    if (lr == LoopResult::Cutoff) return fail(SolveStatus::CutoffReached);
    if (lr != LoopResult::Converged) return fail(SolveStatus::Numerical);
    if (!reinvert()) return fail(SolveStatus::Numerical);
    compute_basic_values();
    if (attempt == 1 && total_infeasibility() > opt_.feas_tol) {
      return fail(SolveStatus::Infeasible);
    }
  }
  if (total_infeasibility() > opt_.feas_tol) {
    return fail(SolveStatus::Infeasible);
  }

  // Phase 2, with feasibility restoration on numerical drift.
  sol.status = SolveStatus::Numerical;
  for (int attempt = 0; attempt < 4; ++attempt) {
    LoopResult lr = iterate(/*phase1=*/false);
    if (lr == LoopResult::IterLimit) return fail(SolveStatus::IterationLimit);
    if (lr == LoopResult::Unbounded) return fail(SolveStatus::Unbounded);
    if (lr == LoopResult::Numerical) return fail(SolveStatus::Numerical);
    if (lr == LoopResult::Aborted) return fail(SolveStatus::Aborted);
    if (lr == LoopResult::Cutoff) return fail(SolveStatus::CutoffReached);
    if (!reinvert()) return fail(SolveStatus::Numerical);
    compute_basic_values();
    if (total_infeasibility() <= 10 * opt_.feas_tol) {
      sol.status = SolveStatus::Optimal;
      break;
    }
    // Drifted: restore feasibility and re-optimise.
    LoopResult p1 = iterate(/*phase1=*/true);
    if (p1 == LoopResult::Aborted) return fail(SolveStatus::Aborted);
    if (p1 == LoopResult::Cutoff) return fail(SolveStatus::CutoffReached);
    if (p1 != LoopResult::Converged) return fail(SolveStatus::Numerical);
  }

  // Extract and unscale.
  sol.iterations = iterations_;
  for (int j = 0; j < n_; ++j) {
    auto sj = static_cast<size_t>(j);
    double v = value_[sj] * col_scale_[sj];
    double lo = model.var_lb(j), hi = model.var_ub(j);
    sol.x[sj] = std::min(std::max(v, lo), hi);
  }
  for (const auto& entry : model.entries()) {
    sol.row_value[static_cast<size_t>(entry.row)] +=
        entry.value * sol.x[static_cast<size_t>(entry.var)];
  }
  // Duals from the final basis (for the minimisation form), unscaled.
  {
    std::vector<double> y(static_cast<size_t>(m_), 0.0);
    for (int p = 0; p < m_; ++p) {
      auto j = static_cast<size_t>(basic_[static_cast<size_t>(p)]);
      y[static_cast<size_t>(p)] = cost_[j];
    }
    btran(y);
    for (int i = 0; i < m_; ++i) {
      auto si = static_cast<size_t>(i);
      sol.dual[si] = sense_sign_ * y[si] * row_scale_[si];
    }
  }
  double obj = 0.0;
  for (int j = 0; j < n_; ++j) {
    obj += model.obj(j) * sol.x[static_cast<size_t>(j)];
  }
  sol.objective = obj;
  return sol;
}

}  // namespace detail

Solution solve(const Model& model, const SolverOptions& options) {
  detail::Simplex simplex(model, options);
  return simplex.run(model);
}

}  // namespace pmcast::lp
