#pragma once
/// \file simplex.hpp
/// Sparse bounded-variable primal simplex with product-form inverse (PFI).
///
/// Design (see DESIGN.md §2, §5):
///  * computational form: every row i gets a logical variable s_i with
///    bounds [lo_i, hi_i] and the system becomes A x - s = 0; the initial
///    basis is the (trivially invertible) logical basis;
///  * phase 1 is the classic composite method: minimise the sum of bound
///    violations of basic variables with a piecewise-linear cost re-derived
///    each iteration, stopping at the first ratio-test breakpoint;
///  * the basis inverse is kept as an eta file (PFI) with periodic
///    reinversion by product-form Gauss–Jordan, logical columns first;
///  * Dantzig pricing with a Bland's-rule fallback after a run of
///    degenerate pivots guarantees termination;
///  * optional geometric-mean equilibration improves conditioning on the
///    strongly heterogeneous platforms used in the experiments.

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace pmcast::lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  Numerical,
};

const char* to_string(SolveStatus s);

struct SolverOptions {
  /// 0 = automatic (scales with the model size).
  int max_iterations = 0;
  double feas_tol = 1e-7;   ///< bound/row feasibility tolerance
  double opt_tol = 1e-7;    ///< reduced-cost (dual feasibility) tolerance
  double pivot_tol = 1e-8;  ///< minimum acceptable pivot magnitude
  int refactor_every = 600; ///< eta-file length triggering reinversion
                            ///  (reinversion dominates large solves; the
                            ///  phase-2 drift check guards the numerics)
  bool scale = true;        ///< geometric-mean equilibration
};

struct Solution {
  SolveStatus status = SolveStatus::Numerical;
  double objective = 0.0;
  std::vector<double> x;          ///< structural variable values
  std::vector<double> row_value;  ///< row activities (A x)_i
  std::vector<double> dual;       ///< row duals y_i (sign: min problem)
  int iterations = 0;

  bool optimal() const { return status == SolveStatus::Optimal; }
};

/// A simplex basis snapshot: one status per variable, structurals first
/// (model order), then one logical per row. The encoding matches the
/// solver's internal VarStatus (0 = nonbasic at lower, 1 = nonbasic at
/// upper, 2 = basic, 3 = nonbasic free). A Basis is only meaningful for
/// models with the same variable/row counts it was exported from; values
/// are not stored — nonbasic variables re-seat on their bounds and basic
/// values are recomputed on load.
struct Basis {
  std::vector<signed char> status;

  bool empty() const { return status.empty(); }
  bool shaped_for(int num_vars, int num_rows) const {
    return static_cast<int>(status.size()) == num_vars + num_rows;
  }
};

/// Solve \p model. Never throws on solvable-but-hard inputs; inspect
/// Solution::status.
Solution solve(const Model& model, const SolverOptions& options = {});

}  // namespace pmcast::lp
