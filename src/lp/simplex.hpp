#pragma once
/// \file simplex.hpp
/// Sparse bounded-variable primal simplex with product-form inverse (PFI).
///
/// Design (see DESIGN.md §2, §5):
///  * computational form: every row i gets a logical variable s_i with
///    bounds [lo_i, hi_i] and the system becomes A x - s = 0; the initial
///    basis is the (trivially invertible) logical basis;
///  * phase 1 is the classic composite method: minimise the sum of bound
///    violations of basic variables with a piecewise-linear cost re-derived
///    each iteration, stopping at the first ratio-test breakpoint;
///  * the basis inverse is kept as an eta file (PFI) with periodic
///    reinversion by product-form Gauss–Jordan, logical columns first;
///  * Dantzig pricing with a Bland's-rule fallback after a run of
///    degenerate pivots guarantees termination;
///  * optional geometric-mean equilibration improves conditioning on the
///    strongly heterogeneous platforms used in the experiments.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace pmcast::lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  Numerical,
  Aborted,        ///< checkpoint requested a stop (deadline / cancellation)
  CutoffReached,  ///< checkpoint cut the solve off (objective dominated)
};

const char* to_string(SolveStatus s);

/// True for the two checkpoint-interrupt statuses: the solve was told to
/// stop (deadline/cancellation Abort, or a pruning Cutoff), it did not
/// fail. Callers must not treat these as solver errors — no fallback,
/// no retry, no "Failed" classification.
inline bool is_interrupted(SolveStatus s) {
  return s == SolveStatus::Aborted || s == SolveStatus::CutoffReached;
}

/// Verdict of a SolverOptions::checkpoint poll. The two abort flavours are
/// kept apart so callers can tell "we ran out of time" (Abort -> Aborted)
/// from "the answer no longer matters" (Cutoff -> CutoffReached): the first
/// is a budget event, the second a pruning event, and the runtime maps them
/// to different outcome classifications.
enum class CheckpointAction {
  Continue,
  Abort,   ///< stop now; solve returns SolveStatus::Aborted
  Cutoff,  ///< stop now; solve returns SolveStatus::CutoffReached
};

/// Entering-variable selection rule.
enum class PricingRule {
  /// Most-negative reduced cost. The historical default — every bit-exact
  /// golden trace was recorded under it, so it stays the default.
  Dantzig,
  /// Forrest–Goldfarb reference-framework weights (approximate steepest
  /// edge). Costs one extra BTRAN plus a pricing-sized pass per pivot but
  /// takes far fewer pivots on the long, thin restricted masters that
  /// column generation produces; that is where the engine turns it on.
  Devex,
};

struct SolverOptions {
  /// 0 = automatic (scales with the model size).
  int max_iterations = 0;
  double feas_tol = 1e-7;   ///< bound/row feasibility tolerance
  double opt_tol = 1e-7;    ///< reduced-cost (dual feasibility) tolerance
  double pivot_tol = 1e-8;  ///< minimum acceptable pivot magnitude
  int refactor_every = 600; ///< eta-file length triggering reinversion
                            ///  (reinversion dominates large solves; the
                            ///  phase-2 drift check guards the numerics)
  bool scale = true;        ///< geometric-mean equilibration

  /// Cooperative mid-solve hook, polled every checkpoint_every simplex
  /// iterations (both phases). Returning Abort/Cutoff makes the solve stop
  /// within one checkpoint interval and report the matching status; the
  /// partially-iterated state is discarded by callers (no Solution values
  /// are extracted for non-Optimal statuses). Null = never polled.
  std::function<CheckpointAction()> checkpoint;
  /// Iterations between checkpoint polls. A poll is two atomic loads and a
  /// clock read in the runtime's guards — far below the cost of one pivot
  /// (a full BTRAN + pricing pass + FTRAN) — so a small interval buys
  /// deadline responsiveness at well under 1% overhead.
  int checkpoint_every = 32;

  PricingRule pricing = PricingRule::Dantzig;

  /// Pattern-tracked sparse FTRAN for pivot columns and reinversion. The
  /// arithmetic is bit-identical to the dense reference loops it replaces
  /// (the pattern is sorted before any order-sensitive scan); false keeps
  /// the dense loops, which the sparse-vs-dense differential suite runs
  /// as its reference.
  bool sparse_ftran = true;
};

struct Solution {
  SolveStatus status = SolveStatus::Numerical;
  double objective = 0.0;
  std::vector<double> x;          ///< structural variable values
  std::vector<double> row_value;  ///< row activities (A x)_i
  std::vector<double> dual;       ///< row duals y_i (sign: min problem)
  int iterations = 0;

  bool optimal() const { return status == SolveStatus::Optimal; }
};

/// A simplex basis snapshot: one status per variable, structurals first
/// (model order), then one logical per row. The encoding matches the
/// solver's internal VarStatus (0 = nonbasic at lower, 1 = nonbasic at
/// upper, 2 = basic, 3 = nonbasic free). A Basis is only meaningful for
/// models with the same variable/row counts it was exported from; values
/// are not stored — nonbasic variables re-seat on their bounds and basic
/// values are recomputed on load.
struct Basis {
  std::vector<signed char> status;

  bool empty() const { return status.empty(); }
  bool shaped_for(int num_vars, int num_rows) const {
    return static_cast<int>(status.size()) == num_vars + num_rows;
  }
};

/// Solve \p model. Never throws on solvable-but-hard inputs; inspect
/// Solution::status.
Solution solve(const Model& model, const SolverOptions& options = {});

}  // namespace pmcast::lp
