#pragma once
/// \file simplex_impl.hpp
/// The PFI simplex engine behind lp::solve() and lp::IncrementalSimplex.
/// Internal header: the class keeps mutable factorisation state (the eta
/// file) alive between solves, which is what the warm-start layer
/// (lp/resolve.hpp) trades on. Everything here assumes single-threaded use
/// of one instance; distinct instances are independent.
///
/// Solve modes, in decreasing order of reuse:
///  * cold        — ctor + run(): logical basis, fresh factorisation;
///  * basis warm  — ctor + load_basis() + run(): adopt a Basis snapshot
///    from a previous solve of a same-shape model, refactorise (with the
///    standard repair of dependent columns), then iterate;
///  * eta reuse   — refresh_data() + run() on a live instance whose model
///    kept the exact same constraint entries: bounds/costs are reloaded in
///    place, the basis *and* the eta file survive, and the next solve
///    starts from the previous optimal point with zero refactorisation.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <tuple>
#include <vector>

#include "lp/simplex.hpp"
#include "lp/sparse.hpp"

namespace pmcast::lp::detail {

inline constexpr double kDropTol = 1e-11;  // eta entries below this dropped

enum VarStatus : signed char {
  kNonbasicLower = 0,
  kNonbasicUpper = 1,
  kBasic = 2,
  kNonbasicFree = 3,
};

/// Product-form eta: the basis changed by replacing the column pivoted at
/// row r with a column whose FTRANed image is (val at idx, pivot at r).
struct Eta {
  int r = -1;
  double pivot = 0.0;
  std::vector<int> idx;   // excludes r
  std::vector<double> val;
};

class Simplex {
 public:
  Simplex(const Model& model, const SolverOptions& opt);

  /// Solve from the current state. The first call on a fresh instance runs
  /// cold from the logical basis; after load_basis()/refresh_data() it
  /// continues from the adopted/previous point. Solution::iterations counts
  /// this call only.
  Solution run(const Model& model);

  /// Adopt \p basis (statuses for n structurals then m logicals) and
  /// refactorise, repairing numerically dependent columns. Returns false —
  /// leaving the instance unusable, caller must fall back cold — when the
  /// snapshot has the wrong shape or refactorisation fails outright.
  bool load_basis(const Basis& basis);

  /// Export the current basis statuses (valid after a run()).
  Basis basis() const;

  /// Reload bounds and objective from \p model, which must have the exact
  /// same entries/sense as the model this instance was built with. Keeps
  /// the basis and the eta file; nonbasic variables are re-seated on their
  /// (possibly moved) bounds and basic values recomputed through the
  /// existing factorisation.
  void refresh_data(const Model& model);

  /// Absorb the columns \p model gained (via Model::add_column) since this
  /// engine was built or last appended. The internal index layout keeps
  /// structurals in [0, n) — logicals shift up — but the eta file
  /// references row positions only, so the factorisation survives
  /// untouched and the very next solve is an eta-reuse warm start. New
  /// columns enter nonbasic at a finite bound. Returns false (engine
  /// unchanged, caller rebuilds cold) when the model's rows changed, its
  /// variable count shrank, or new entries touch pre-existing columns.
  bool append_columns(const Model& model);

 private:
  void build(const Model& model);
  void compute_scaling();
  void load_bounds_and_costs(const Model& model);
  void reset_to_logical_basis();

  // --- basis linear algebra (PFI) ---
  void ftran(std::vector<double>& v) const {
    for (const Eta& e : etas_) {
      double t = v[static_cast<size_t>(e.r)];
      if (t == 0.0) continue;
      t /= e.pivot;
      v[static_cast<size_t>(e.r)] = t;
      const size_t k = e.idx.size();
      for (size_t i = 0; i < k; ++i) {
        v[static_cast<size_t>(e.idx[i])] -= e.val[i] * t;
      }
    }
  }
  void btran(std::vector<double>& y) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const Eta& e = *it;
      double t = y[static_cast<size_t>(e.r)];
      const size_t k = e.idx.size();
      for (size_t i = 0; i < k; ++i) {
        t -= e.val[i] * y[static_cast<size_t>(e.idx[i])];
      }
      y[static_cast<size_t>(e.r)] = t / e.pivot;
    }
  }

  /// Sparse FTRAN: same arithmetic as ftran() — each eta is skipped when
  /// v[e.r] == 0.0, so results are bit-equal — but every position written
  /// is recorded in \p pat (deduplicated via \p mark), sparing callers the
  /// O(m) zero scan afterwards. The pattern is a superset of the true
  /// nonzeros (cancellations stay listed) and comes out unsorted; callers
  /// whose downstream scans are order-sensitive must sort it first.
  void ftran_sparse(std::vector<double>& v, std::vector<int>& pat,
                    std::vector<char>& mark) const {
    for (const Eta& e : etas_) {
      double t = v[static_cast<size_t>(e.r)];
      if (t == 0.0) continue;
      t /= e.pivot;
      v[static_cast<size_t>(e.r)] = t;
      const size_t k = e.idx.size();
      for (size_t i = 0; i < k; ++i) {
        auto p = static_cast<size_t>(e.idx[i]);
        v[p] -= e.val[i] * t;
        if (!mark[p]) {
          mark[p] = 1;
          pat.push_back(e.idx[i]);
        }
      }
    }
  }

  // Column access: structural j < n_ is a CSC slice of mat_; logical
  // j >= n_ is the singleton -e_{j - n_} (never materialised).
  void scatter_column(int var, std::vector<double>& dense) const {
    if (var >= n_) {
      dense[static_cast<size_t>(var - n_)] += -1.0;
      return;
    }
    for (std::int64_t k = mat_.col_begin(var); k < mat_.col_end(var); ++k) {
      dense[static_cast<size_t>(mat_.row(k))] += mat_.value(k);
    }
  }

  /// scatter_column that also records the touched positions in pat/mark —
  /// the seed pattern for ftran_sparse.
  void scatter_column_pattern(int var, std::vector<double>& dense,
                              std::vector<int>& pat,
                              std::vector<char>& mark) const {
    auto touch = [&](int i, double v) {
      auto p = static_cast<size_t>(i);
      dense[p] += v;
      if (!mark[p]) {
        mark[p] = 1;
        pat.push_back(i);
      }
    };
    if (var >= n_) {
      touch(var - n_, -1.0);
      return;
    }
    for (std::int64_t k = mat_.col_begin(var); k < mat_.col_end(var); ++k) {
      touch(mat_.row(k), mat_.value(k));
    }
  }

  double dot_column(int var, const std::vector<double>& y) const {
    if (var >= n_) return -y[static_cast<size_t>(var - n_)];
    double s = 0.0;
    for (std::int64_t k = mat_.col_begin(var); k < mat_.col_end(var); ++k) {
      s += mat_.value(k) * y[static_cast<size_t>(mat_.row(k))];
    }
    return s;
  }

  std::size_t col_nnz(int var) const {
    return var >= n_ ? 1 : mat_.col_nnz(var);
  }

  bool reinvert();
  void compute_basic_values();
  double total_infeasibility() const;

  // --- iteration machinery ---
  struct Pricing {
    int var = -1;
    int direction = 0;  // +1 increase, -1 decrease
    double score = 0.0;
  };
  Pricing price(const std::vector<double>& y, bool phase1) const;

  struct Ratio {
    bool unbounded = false;
    bool bound_flip = false;
    int leave_pos = -1;
    double step = 0.0;
    signed char leave_status = kNonbasicLower;  // bound the leaver lands on
  };
  /// \p pat: sorted nonzero pattern of w, or nullptr for the dense
  /// reference scan (SolverOptions::sparse_ftran == false). The sorted
  /// pattern reproduces the dense loop's ascending-row visit order, so
  /// tie-breaking is identical.
  Ratio ratio_test(int enter, int direction, const std::vector<double>& w,
                   bool phase1, const std::vector<int>* pat) const;

  void apply_step(int enter, int direction, const Ratio& r,
                  std::vector<double>& w, const std::vector<int>* pat);

  // Devex (Forrest–Goldfarb) reference-framework weights; only maintained
  // when opt_.pricing == PricingRule::Devex. Called with the pre-pivot
  // basis (before apply_step appends the pivot's eta).
  void update_devex(int enter, int leave_pos, const std::vector<double>& w);
  void reset_devex() { devex_w_.assign(static_cast<size_t>(nt_), 1.0); }

  bool is_fixed(int j) const {
    return ub_[static_cast<size_t>(j)] - lb_[static_cast<size_t>(j)] <
           opt_.feas_tol;
  }

  enum class LoopResult {
    Converged,
    IterLimit,
    Unbounded,
    Numerical,
    Aborted,  // checkpoint said Abort
    Cutoff,   // checkpoint said Cutoff
  };
  LoopResult iterate(bool phase1);

  SolverOptions opt_;
  int m_, n_, nt_;
  double sense_sign_ = 1.0;  // +1 Minimize, -1 Maximize

  CscMatrix mat_;                     // n_ structural columns (scaled);
                                      // logical i = implicit column -e_i
  std::size_t entries_seen_ = 0;      // model entries consumed so far —
                                      // append_columns resumes here
  std::vector<double> lb_, ub_;       // nt_
  std::vector<double> cost_;          // nt_, minimisation costs (scaled)
  std::vector<double> row_scale_, col_scale_;
  std::vector<double> devex_w_;       // nt_ when devex pricing is active

  std::vector<int> basic_;            // m_: var basic at row position p
  std::vector<int> basic_pos_;        // nt_: position or -1
  std::vector<signed char> status_;   // nt_
  std::vector<double> value_;         // nt_

  std::vector<Eta> etas_;
  size_t etas_base_ = 0;
  size_t base_nnz_ = 0;    // eta nnz produced by the last reinversion
  size_t update_nnz_ = 0;  // eta nnz appended by pivots since then

  bool factorized_ = false;  // etas_ invert the current basis

  int iterations_ = 0;
  int max_iters_ = 0;
  int degenerate_run_ = 0;
  bool bland_ = false;
};

}  // namespace pmcast::lp::detail
