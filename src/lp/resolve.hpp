#pragma once
/// \file resolve.hpp
/// Warm-started / incremental LP resolution, the substrate of the paper's
/// refinement heuristics (Figs. 6/7/8): each heuristic solves dozens of
/// closely-related LPs, and rebuilding + cold-solving every one dominates
/// the portfolio's latency. This layer keeps the simplex state alive
/// between solves:
///
///  * ResolvableModel — an lp::Model plus mutation tracking: in-place
///    edits of variable bounds, objective coefficients and row bounds are
///    *data* edits (structure version unchanged); adding variables, rows
///    or entries are *structural* edits. The split is what tells the
///    solver how much of its state survives.
///  * IncrementalSimplex — a persistent solver. Data-only edits re-solve
///    in place, reusing the basis AND the eta file (no refactorisation);
///    structural edits or a different model rebuild but warm-start from
///    the previous basis whenever the shape (vars, rows) matches; anything
///    else runs cold. A warm attempt that fails to reach optimality falls
///    back to a full cold solve, so callers never observe a worse status
///    than lp::solve() would return.
///  * ResolveStats — per-sequence counters (solves, warm-start hits, eta
///    reuses, cold fallbacks, simplex iterations) threaded through the
///    heuristics into the runtime's per-strategy outcomes.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace pmcast::lp {

namespace detail {
class Simplex;
}

/// Counters for one warm-started LP sequence.
struct ResolveStats {
  int solves = 0;          ///< total solve() calls
  int warm_starts = 0;     ///< solves that started from a previous basis
  int eta_reuses = 0;      ///< warm starts that also kept the eta file
  int cold_fallbacks = 0;  ///< warm attempts re-run cold after a failure
  long long iterations = 0;///< total simplex iterations (incl. fallbacks)

  // Column-generation accounting (zero outside a pricing loop).
  int columns_priced = 0;     ///< columns appended by a pricing oracle
  int master_iterations = 0;  ///< restricted-master re-solves in the loop
  double pricing_ms = 0.0;    ///< wall-clock spent inside the oracle

  double warm_hit_rate() const {
    return solves > 0 ? static_cast<double>(warm_starts) / solves : 0.0;
  }

  void merge(const ResolveStats& other) {
    solves += other.solves;
    warm_starts += other.warm_starts;
    eta_reuses += other.eta_reuses;
    cold_fallbacks += other.cold_fallbacks;
    iterations += other.iterations;
    columns_priced += other.columns_priced;
    master_iterations += other.master_iterations;
    pricing_ms += other.pricing_ms;
  }
};

/// A Model with mutation tracking. Data edits (bounds, objective, row
/// bounds) keep the structure version; structural edits (new variables,
/// rows or entries) bump it and cost the solver its factorisation.
///
/// Every instance carries a process-unique serial — regenerated on
/// copy/move/assign — so a solver can tell "the same model sequence,
/// mutated" from "a different model that happens to live at a reused
/// address" (the latter must never pass for eta reuse).
class ResolvableModel {
 public:
  ResolvableModel() = default;
  explicit ResolvableModel(Model base) : model_(std::move(base)) {}

  ResolvableModel(const ResolvableModel& other)
      : model_(other.model_),
        structure_(other.structure_),
        data_(other.data_),
        columns_(other.columns_) {}
  ResolvableModel(ResolvableModel&& other) noexcept
      : model_(std::move(other.model_)),
        structure_(other.structure_),
        data_(other.data_),
        columns_(other.columns_) {}
  ResolvableModel& operator=(const ResolvableModel& other) {
    model_ = other.model_;
    structure_ = other.structure_;
    data_ = other.data_;
    columns_ = other.columns_;
    serial_ = next_serial();
    return *this;
  }
  ResolvableModel& operator=(ResolvableModel&& other) noexcept {
    model_ = std::move(other.model_);
    structure_ = other.structure_;
    data_ = other.data_;
    columns_ = other.columns_;
    serial_ = next_serial();
    return *this;
  }

  const Model& model() const { return model_; }

  /// Process-unique identity of this instance (never 0, never reused).
  std::uint64_t serial() const { return serial_; }

  // --- data edits (basis and eta file survive) ---
  void set_var_bounds(int j, double lb, double ub) {
    assert(lb <= ub);
    model_.set_var_lb(j, lb);
    model_.set_var_ub(j, ub);
    ++data_;
  }
  void set_obj_coeff(int j, double c) {
    model_.set_obj(j, c);
    ++data_;
  }
  void set_row_bounds(int i, double lo, double hi) {
    assert(lo <= hi);
    model_.set_row_lo(i, lo);
    model_.set_row_hi(i, hi);
    ++data_;
  }

  // --- column appends (basis and eta file survive; the solver absorbs
  //     the new columns without refactorising) ---

  /// Add a variable with its full constraint column (Model::add_column).
  /// Tracked separately from structural edits: an append only ever adds
  /// entries for the new variable, so the solver keeps its factorisation
  /// and the very next solve is an eta-reuse warm start — the mutation
  /// class column generation lives on.
  int add_column(double lb, double ub, double obj, std::span<const int> rows,
                 std::span<const double> values, std::string name = {}) {
    ++columns_;
    return model_.add_column(lb, ub, obj, rows, values, std::move(name));
  }

  // --- structural edits (bounded row/column growth between solves) ---
  int add_variable(double lb, double ub, double obj, std::string name = {}) {
    ++structure_;
    return model_.add_variable(lb, ub, obj, std::move(name));
  }
  int add_row(double lo, double hi, std::string name = {}) {
    ++structure_;
    return model_.add_row(lo, hi, std::move(name));
  }
  void add_entry(int row, int var, double value) {
    ++structure_;
    model_.add_entry(row, var, value);
  }

  /// Full access for builders; treated as a structural edit.
  Model& mutable_model() {
    ++structure_;
    return model_;
  }

  std::uint64_t structure_version() const { return structure_; }
  std::uint64_t data_version() const { return data_; }
  std::uint64_t columns_version() const { return columns_; }

 private:
  static std::uint64_t next_serial() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Model model_;
  std::uint64_t structure_ = 0;
  std::uint64_t data_ = 0;
  std::uint64_t columns_ = 0;
  std::uint64_t serial_ = next_serial();
};

/// Persistent solver for a sequence of related LPs. Not thread-safe; use
/// one instance per sequence (they are cheap to create).
class IncrementalSimplex {
 public:
  explicit IncrementalSimplex(SolverOptions options = {});
  ~IncrementalSimplex();
  IncrementalSimplex(IncrementalSimplex&&) noexcept;
  IncrementalSimplex& operator=(IncrementalSimplex&&) noexcept;

  /// Solve \p rm, reusing as much previous state as its mutation history
  /// allows: eta reuse when only data changed since the last solve of the
  /// same object, basis warm start when the shape still matches, cold
  /// otherwise. Falls back to a cold solve when a warm attempt does not
  /// reach optimality.
  Solution solve(const ResolvableModel& rm);

  /// Solve a free-standing model, warm-starting from the last successful
  /// basis when the shape matches (no eta reuse). For sequences that
  /// rebuild the model each step (e.g. Fig. 8's per-candidate multisource
  /// programs).
  Solution solve_model(const Model& model);

  /// Drop all remembered state; the next solve runs cold.
  void reset();

  /// Basis of the last successful solve (empty when none). Cheap to copy;
  /// pair with set_start_basis() to anchor a probe sequence on one
  /// accepted point instead of chaining probe-to-probe.
  const Basis& last_basis() const { return last_basis_; }

  /// One-shot override: the next solve warm-starts from \p basis (shape
  /// permitting) instead of the previous solve's end basis. If it matches
  /// the internal end basis the cheaper eta-reuse path is kept.
  void set_start_basis(Basis basis) { pending_basis_ = std::move(basis); }

  const ResolveStats& stats() const { return stats_; }

 private:
  /// How much live engine state the mutation history lets this solve keep.
  enum class Reuse {
    Cold,    ///< rebuild from scratch
    Basis,   ///< rebuild, adopt the last basis (refactorise + repair)
    Eta,     ///< reload data in place; basis and eta file survive
    Append,  ///< absorb freshly appended columns, then the Eta path
  };
  Solution solve_internal(const Model& model, Reuse reuse);

  SolverOptions options_;
  ResolveStats stats_;
  std::unique_ptr<detail::Simplex> engine_;
  Basis last_basis_;
  Basis pending_basis_;  ///< one-shot start override (set_start_basis)
  int last_vars_ = -1;
  int last_rows_ = -1;
  std::uint64_t bound_serial_ = 0;  ///< ResolvableModel::serial(), 0 = none
  std::uint64_t bound_structure_ = 0;
  std::uint64_t bound_columns_ = 0;

  // Adaptive guard: on degenerate, flow-heavy instances the phase-1 repair
  // from a warm basis can cost more than a cold solve. Each warm solve is
  // compared against the latest cold solve of the same sequence; warm
  // solves without 2x headroom accumulate strikes (clearly-good ones decay
  // them) and three net strikes disable warm-starting for the rest of the
  // sequence (reset() re-arms it).
  int cold_reference_iters_ = -1;
  int warm_strikes_ = 0;
  bool warm_disabled_ = false;
};

}  // namespace pmcast::lp
