#include "net/faultpoint.hpp"

namespace pmcast::net {
namespace {

/// splitmix64: tiny, well-mixed, and stable across platforms — the schedule
/// must be bit-identical everywhere, so no std:: engine (implementation-
/// defined streams) is used.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultRule> rules)
    : seed_(seed) {
  rules_.reserve(rules.size());
  std::uint64_t index = 0;
  for (FaultRule& rule : rules) {
    RuleState state;
    state.rule = rule;
    // Independent stream per rule: mixing the index in twice decorrelates
    // adjacent rules even for adjacent seeds.
    std::uint64_t mix = seed ^ (0xD1B54A32D192ED03ull * (index + 1));
    splitmix64(mix);
    state.prng = mix;
    rules_.push_back(state);
    ++index;
  }
}

double FaultPlan::next_uniform(RuleState& state) {
  // 53-bit mantissa -> uniform in [0, 1).
  return static_cast<double>(splitmix64(state.prng) >> 11) * 0x1.0p-53;
}

FaultDecision FaultPlan::poll(FaultPoint point) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t p = static_cast<std::size_t>(point);
  const std::uint64_t hit = ++hits_[p];

  FaultDecision decision;
  for (RuleState& state : rules_) {
    if (state.rule.point != point) continue;
    bool fires = false;
    switch (state.rule.trigger) {
      case FaultTrigger::kNth:
        fires = state.rule.nth > 0 && hit % state.rule.nth == 0;
        break;
      case FaultTrigger::kProbability:
        // Draw exactly once per poll whether it fires or not: the k-th
        // decision depends only on (seed, rule, k), never on other points.
        fires = next_uniform(state) < state.rule.probability;
        break;
      case FaultTrigger::kOneShot:
        fires = state.fired == 0 && hit >= state.rule.nth;
        break;
    }
    if (!fires || decision) {
      continue;  // keep draining PRNGs even after a decision is made
    }
    ++state.fired;
    ++fired_[p];
    decision.action = state.rule.action;
    decision.magnitude = state.rule.magnitude;
    decision.delay_ms = state.rule.delay_ms;
  }
  return decision;
}

std::uint64_t FaultPlan::hits(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_[static_cast<std::size_t>(point)];
}

std::uint64_t FaultPlan::fired(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_[static_cast<std::size_t>(point)];
}

std::uint64_t FaultPlan::total_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (std::uint64_t f : fired_) total += f;
  return total;
}

}  // namespace pmcast::net
