#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

namespace pmcast::net {
namespace {

using ClientClock = std::chrono::steady_clock;

Status socket_error(const std::string& what) {
  return Status(StatusCode::kUnavailable, what + ": " + std::strerror(errno));
}

/// splitmix64, matching faultpoint.cpp: retry jitter must be bit-stable
/// across platforms so a seeded chaos run replays exactly.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void set_recv_timeout(int fd, double timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0.0) {
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(std::move(other.options_)),
      next_request_id_(other.next_request_id_),
      in_(std::move(other.in_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      attempts_(other.attempts_),
      stale_discarded_(other.stale_discarded_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = std::move(other.options_);
    next_request_id_ = other.next_request_id_;
    in_ = std::move(other.in_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    attempts_ = other.attempts_;
    stale_discarded_ = other.stale_discarded_;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

FaultDecision Client::poll_fault(FaultPoint point) {
  FaultPlan* plan = options_.fault_plan.get();
  if (plan == nullptr) return {};
  FaultDecision decision = plan->poll(point);
  if (decision.action == FaultAction::kDelay && decision.delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(decision.delay_ms));
  }
  return decision;
}

namespace {

/// Open a fresh TCP connection to host:port. Shared by the initial
/// connect() and by reconnect() on solve()'s retry path. With a positive
/// \p connect_timeout_ms the connect runs non-blocking and is bounded by a
/// poll(); a timeout maps to kUnavailable so the retry policy covers it.
Result<int> dial(const std::string& host, std::uint16_t port,
                 double connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return socket_error("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve it.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* resolved = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &resolved) != 0 ||
        resolved == nullptr) {
      ::close(fd);
      return Status(StatusCode::kNotFound,
                    "cannot resolve host '" + host + "'");
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(resolved->ai_addr)->sin_addr;
    ::freeaddrinfo(resolved);
  }

  const std::string endpoint = host + ":" + std::to_string(port);
  if (connect_timeout_ms > 0.0) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0) {
      if (errno != EINPROGRESS) {
        Status status = socket_error("connect " + endpoint);
        ::close(fd);
        return status;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(
          &pfd, 1, static_cast<int>(std::ceil(connect_timeout_ms)));
      if (pr == 0) {
        ::close(fd);
        return Status(StatusCode::kUnavailable,
                      "connect " + endpoint + " timed out");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (pr < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
          so_error != 0) {
        if (so_error != 0) errno = so_error;
        Status status = socket_error("connect " + endpoint);
        ::close(fd);
        return status;
      }
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/recv
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) < 0) {
    Status status = socket_error("connect " + endpoint);
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<Client> Client::connect(const std::string& host, std::uint16_t port,
                               ClientOptions options) {
  Client client;
  client.options_ = std::move(options);
  client.host_ = host;
  client.port_ = port;
  if (client.poll_fault(FaultPoint::kConnect).action == FaultAction::kReset) {
    return Status(StatusCode::kUnavailable,
                  "injected fault: connect reset");
  }
  Result<int> fd = dial(host, port, client.options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  client.fd_ = *fd;
  return client;
}

Status Client::reconnect() {
  close();
  if (host_.empty()) {
    return Status(StatusCode::kUnavailable, "no remembered endpoint");
  }
  if (poll_fault(FaultPoint::kConnect).action == FaultAction::kReset) {
    return Status(StatusCode::kUnavailable, "injected fault: connect reset");
  }
  Result<int> fd = dial(host_, port_, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::Ok();
}

Status Client::send_all(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  std::size_t limit = bytes.size();
  if (FaultDecision fault = poll_fault(FaultPoint::kClientSend)) {
    if (fault.action == FaultAction::kReset) {
      close();
      return Status(StatusCode::kUnavailable, "injected fault: send reset");
    }
    if (fault.action == FaultAction::kShortWrite ||
        fault.action == FaultAction::kTruncate) {
      // Die mid-send: the server receives a truncated frame followed by a
      // close — exactly what a client crash between write() calls leaves.
      limit = std::min<std::size_t>(
          bytes.size(), static_cast<std::size_t>(fault.magnitude));
    }
  }
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return socket_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  if (limit < bytes.size()) {
    close();
    return Status(StatusCode::kUnavailable,
                  "injected fault: short write (" + std::to_string(limit) +
                      " of " + std::to_string(bytes.size()) + " bytes)");
  }
  return Status::Ok();
}

Result<Frame> Client::read_matching(std::uint64_t request_id,
                                    double timeout_ms) {
  const ClientClock::time_point start = ClientClock::now();
  int stale_this_call = 0;
  while (true) {
    // Frames already buffered first.
    while (true) {
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const FrameStatus status =
          extract_frame(in_, &frame, &consumed, &error);
      if (status == FrameStatus::kMalformed) {
        close();
        return Status(StatusCode::kInternal,
                      "protocol error from server: " + error);
      }
      if (status == FrameStatus::kNeedMore) break;
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(
                                               consumed));
      if (frame.header.request_id == request_id) return frame;
      // A stale frame (response to an id we stopped waiting for): drop it,
      // but only so many times — an unbounded run of mismatched ids means
      // the stream is poisoned (or the peer is not our server), and
      // discarding forever would turn that into a silent hang.
      ++stale_discarded_;
      if (options_.max_stale_frames > 0 &&
          ++stale_this_call > options_.max_stale_frames) {
        close();
        return Status(StatusCode::kInternal,
                      "protocol error from server: more than " +
                          std::to_string(options_.max_stale_frames) +
                          " stale frames while waiting for request " +
                          std::to_string(request_id));
      }
    }

    double remaining_ms = -1.0;
    if (timeout_ms >= 0.0) {
      const double elapsed =
          std::chrono::duration<double, std::milli>(ClientClock::now() -
                                                    start)
              .count();
      remaining_ms = timeout_ms - elapsed;
      if (remaining_ms <= 0.0) {
        return Status(StatusCode::kDeadlineExceeded,
                      "timed out waiting for the server's response");
      }
    }
    set_recv_timeout(fd_, remaining_ms > 0.0 ? remaining_ms : 0.0);

    std::size_t want = sizeof(std::uint8_t) * 16 * 1024;
    if (FaultDecision fault = poll_fault(FaultPoint::kClientRecv)) {
      if (fault.action == FaultAction::kReset) {
        close();
        return Status(StatusCode::kUnavailable, "injected fault: recv reset");
      }
      if (fault.action == FaultAction::kShortRead) {
        want = std::max<std::size_t>(
            1, static_cast<std::size_t>(fault.magnitude));
      }
    }
    std::uint8_t chunk[16 * 1024];
    want = std::min(want, sizeof(chunk));
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status(StatusCode::kDeadlineExceeded,
                    "timed out waiting for the server's response");
    }
    close();
    return Status(StatusCode::kUnavailable,
                  n == 0 ? "server closed the connection"
                         : std::string("recv: ") + std::strerror(errno));
  }
}

Result<RemoteResponse> Client::solve(const SolveRequest& request) {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  Status valid = validate_problem(request.problem);
  if (!valid.ok()) return valid;

  WireRequest wire;
  wire.tenant = options_.tenant;
  wire.request_id = next_request_id_++;
  if (request.deadline_ms < 0.0) {
    wire.no_deadline = true;  // the explicit kNoDeadline sentinel
  } else {
    wire.deadline_ms = request.deadline_ms;
  }
  wire.priority = request.priority;
  wire.strategy_mask = mask_from_strategies(request.strategies);
  wire.exact_max_nodes = request.limits.exact_max_nodes;
  wire.exact_max_trees =
      static_cast<std::uint64_t>(request.limits.exact_max_trees);
  if (request.pruning.has_value()) {
    wire.pruning = static_cast<std::uint8_t>(*request.pruning);
  }
  wire.known_lower_bound = request.known_lower_bound;
  wire.problem = request.problem;

  // How long to block: the request's own deadline plus slack, or the
  // no-deadline client cap (0 = forever).
  double timeout_ms = -1.0;
  if (!wire.no_deadline && wire.deadline_ms > 0.0) {
    timeout_ms = wire.deadline_ms + options_.response_slack_ms;
  } else if (options_.response_timeout_ms > 0.0) {
    timeout_ms = options_.response_timeout_ms;
  }

  const std::vector<std::uint8_t> encoded = encode_solve_request(wire);
  auto round_trip = [&]() -> Result<Frame> {
    Status sent = send_all(encoded);
    if (!sent.ok()) return sent;
    return read_matching(wire.request_id, timeout_ms);
  };

  // Retry loop: capped exponential backoff with deterministic jitter (see
  // RetryPolicy). Retryable = the transport died (kUnavailable from a dead
  // socket — safe because the old connection is closed, so the daemon can
  // never answer the original) or the server said kUnavailable /
  // kShuttingDown. Everything else — timeouts, protocol errors, and
  // notably kOverloaded sheds — returns immediately. On exhaustion the
  // LAST error is returned, not the first: the freshest failure is the one
  // that describes the endpoint's current state.
  const RetryPolicy& retry = options_.retry;
  const int max_attempts = std::max(retry.max_attempts, 1);
  const ClientClock::time_point overall_start = ClientClock::now();
  std::uint64_t jitter_state =
      retry.seed ^ (wire.request_id * 0x9E3779B97F4A7C15ull);
  double backoff_ms = std::max(retry.initial_backoff_ms, 0.0);
  Status last_error = Status::Ok();

  for (int attempt = 1;; ++attempt) {
    Status conn_status =
        fd_ >= 0 ? Status::Ok() : reconnect();
    if (!conn_status.ok()) {
      last_error = conn_status;
    } else {
      ++attempts_;
      Result<Frame> frame = round_trip();
      if (!frame.ok()) {
        if (frame.status().code() != StatusCode::kUnavailable) {
          return frame.status();  // timeout/protocol: never retried
        }
        last_error = frame.status();
      } else if (frame->header.type == MessageType::kError) {
        Result<WireErrorMessage> error = decode_error(*frame);
        if (!error.ok()) {
          close();
          return Status(StatusCode::kInternal, "undecodable error frame: " +
                                                   error.status().message());
        }
        if (error->code == WireError::kUnavailable ||
            error->code == WireError::kShuttingDown) {
          last_error = error->to_status();  // conn stays open; just back off
        } else {
          return error->to_status();
        }
      } else if (frame->header.type != MessageType::kSolveResponse) {
        close();
        return Status(StatusCode::kInternal,
                      std::string("unexpected frame type ") +
                          message_type_name(frame->header.type));
      } else {
        Result<WireResponse> wire_response = decode_solve_response(*frame);
        if (!wire_response.ok()) {
          close();
          return Status(StatusCode::kInternal,
                        "undecodable response frame: " +
                            wire_response.status().message());
        }
        RemoteResponse out;
        out.period = wire_response->period;
        out.winner = static_cast<StrategyId>(wire_response->winner);
        out.from_cache = wire_response->from_cache != 0;
        out.coalesced = wire_response->coalesced != 0;
        out.brownout = wire_response->brownout != 0;
        out.solve_ms = wire_response->solve_ms;
        out.total_ms = wire_response->total_ms;
        out.queue_ms = wire_response->queue_ms;
        out.certified = static_cast<int>(wire_response->certified);
        out.failed = static_cast<int>(wire_response->failed);
        out.skipped = static_cast<int>(wire_response->skipped);
        out.pruned = static_cast<int>(wire_response->pruned);
        out.proven_lower_bound = wire_response->proven_lower_bound;
        out.outcomes = std::move(wire_response->outcomes);
        return out;
      }
    }

    // Only retryable failures fall through to here; back off and go again.
    if (attempt >= max_attempts) return last_error;
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(ClientClock::now() -
                                                  overall_start)
            .count();
    if (retry.attempt_deadline_ms > 0.0 &&
        elapsed_ms >= retry.attempt_deadline_ms) {
      return last_error;
    }
    double sleep_ms = backoff_ms;
    if (retry.jitter > 0.0 && sleep_ms > 0.0) {
      const double u =
          static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;
      sleep_ms *= 1.0 + retry.jitter * (2.0 * u - 1.0);
    }
    if (retry.attempt_deadline_ms > 0.0) {
      sleep_ms = std::min(sleep_ms, retry.attempt_deadline_ms - elapsed_ms);
    }
    if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    backoff_ms = std::min(backoff_ms * std::max(retry.backoff_multiplier, 1.0),
                          retry.max_backoff_ms);
  }
}

Status Client::cancel(std::uint64_t request_id) {
  return send_all(encode_cancel(request_id, options_.tenant));
}

Result<ServerWireStats> Client::stats() {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  const std::uint64_t id = next_request_id_++;
  Status sent = send_all(encode_stats_request(id));
  if (!sent.ok()) return sent;
  const double timeout_ms =
      options_.response_timeout_ms > 0.0 ? options_.response_timeout_ms
                                         : 10'000.0;
  Result<Frame> frame = read_matching(id, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->header.type != MessageType::kStatsResponse) {
    return Status(StatusCode::kInternal,
                  std::string("unexpected frame type ") +
                      message_type_name(frame->header.type));
  }
  return decode_stats_response(*frame);
}

Result<ServerWireTrace> Client::trace() {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  const std::uint64_t id = next_request_id_++;
  Status sent = send_all(encode_trace_request(id));
  if (!sent.ok()) return sent;
  const double timeout_ms =
      options_.response_timeout_ms > 0.0 ? options_.response_timeout_ms
                                         : 10'000.0;
  Result<Frame> frame = read_matching(id, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->header.type != MessageType::kTraceResponse) {
    return Status(StatusCode::kInternal,
                  std::string("unexpected frame type ") +
                      message_type_name(frame->header.type));
  }
  return decode_trace_response(*frame);
}

}  // namespace pmcast::net
