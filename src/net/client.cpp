#include "net/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace pmcast::net {
namespace {

using ClientClock = std::chrono::steady_clock;

Status socket_error(const std::string& what) {
  return Status(StatusCode::kUnavailable, what + ": " + std::strerror(errno));
}

void set_recv_timeout(int fd, double timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0.0) {
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      next_request_id_(other.next_request_id_),
      in_(std::move(other.in_)),
      host_(std::move(other.host_)),
      port_(other.port_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    next_request_id_ = other.next_request_id_;
    in_ = std::move(other.in_);
    host_ = std::move(other.host_);
    port_ = other.port_;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

namespace {

/// Open a fresh TCP connection to host:port. Shared by the initial
/// connect() and by reconnect() on solve()'s retry-once path.
Result<int> dial(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return socket_error("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve it.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* resolved = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &resolved) != 0 ||
        resolved == nullptr) {
      ::close(fd);
      return Status(StatusCode::kNotFound,
                    "cannot resolve host '" + host + "'");
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(resolved->ai_addr)->sin_addr;
    ::freeaddrinfo(resolved);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = socket_error("connect " + host + ":" +
                                 std::to_string(port));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<Client> Client::connect(const std::string& host, std::uint16_t port,
                               ClientOptions options) {
  Result<int> fd = dial(host, port);
  if (!fd.ok()) return fd.status();

  Client client;
  client.fd_ = *fd;
  client.options_ = options;
  client.host_ = host;
  client.port_ = port;
  return client;
}

Status Client::reconnect() {
  close();
  if (host_.empty()) {
    return Status(StatusCode::kUnavailable, "no remembered endpoint");
  }
  Result<int> fd = dial(host_, port_);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::Ok();
}

Status Client::send_all(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return socket_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<Frame> Client::read_matching(std::uint64_t request_id,
                                    double timeout_ms) {
  const ClientClock::time_point start = ClientClock::now();
  while (true) {
    // Frames already buffered first.
    while (true) {
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const FrameStatus status =
          extract_frame(in_, &frame, &consumed, &error);
      if (status == FrameStatus::kMalformed) {
        close();
        return Status(StatusCode::kInternal,
                      "protocol error from server: " + error);
      }
      if (status == FrameStatus::kNeedMore) break;
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(
                                               consumed));
      if (frame.header.request_id == request_id) return frame;
      // A stale frame (response to an id we stopped waiting for): drop it.
    }

    double remaining_ms = -1.0;
    if (timeout_ms >= 0.0) {
      const double elapsed =
          std::chrono::duration<double, std::milli>(ClientClock::now() -
                                                    start)
              .count();
      remaining_ms = timeout_ms - elapsed;
      if (remaining_ms <= 0.0) {
        return Status(StatusCode::kDeadlineExceeded,
                      "timed out waiting for the server's response");
      }
    }
    set_recv_timeout(fd_, remaining_ms > 0.0 ? remaining_ms : 0.0);

    std::uint8_t chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status(StatusCode::kDeadlineExceeded,
                    "timed out waiting for the server's response");
    }
    close();
    return Status(StatusCode::kUnavailable,
                  n == 0 ? "server closed the connection"
                         : std::string("recv: ") + std::strerror(errno));
  }
}

Result<RemoteResponse> Client::solve(const SolveRequest& request) {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  Status valid = validate_problem(request.problem);
  if (!valid.ok()) return valid;

  WireRequest wire;
  wire.tenant = options_.tenant;
  wire.request_id = next_request_id_++;
  if (request.deadline_ms < 0.0) {
    wire.no_deadline = true;  // the explicit kNoDeadline sentinel
  } else {
    wire.deadline_ms = request.deadline_ms;
  }
  wire.priority = request.priority;
  wire.strategy_mask = mask_from_strategies(request.strategies);
  wire.exact_max_nodes = request.limits.exact_max_nodes;
  wire.exact_max_trees =
      static_cast<std::uint64_t>(request.limits.exact_max_trees);
  if (request.pruning.has_value()) {
    wire.pruning = static_cast<std::uint8_t>(*request.pruning);
  }
  wire.known_lower_bound = request.known_lower_bound;
  wire.problem = request.problem;

  // How long to block: the request's own deadline plus slack, or the
  // no-deadline client cap (0 = forever).
  double timeout_ms = -1.0;
  if (!wire.no_deadline && wire.deadline_ms > 0.0) {
    timeout_ms = wire.deadline_ms + options_.response_slack_ms;
  } else if (options_.response_timeout_ms > 0.0) {
    timeout_ms = options_.response_timeout_ms;
  }

  const std::vector<std::uint8_t> encoded = encode_solve_request(wire);
  auto round_trip = [&]() -> Result<Frame> {
    Status sent = send_all(encoded);
    if (!sent.ok()) return sent;
    return read_matching(wire.request_id, timeout_ms);
  };
  Result<Frame> frame = round_trip();
  if (!frame.ok() && frame.status().code() == StatusCode::kUnavailable) {
    // The connection died mid-round-trip (server restart, idle reset,
    // ECONNRESET/EPIPE): dial again and resend the identical frame once.
    // Only kUnavailable retries — a timeout or protocol error means the
    // server is alive and re-sending would double the damage.
    if (reconnect().ok()) frame = round_trip();
  }
  if (!frame.ok()) return frame.status();

  if (frame->header.type == MessageType::kError) {
    Result<WireErrorMessage> error = decode_error(*frame);
    if (!error.ok()) {
      close();
      return Status(StatusCode::kInternal,
                    "undecodable error frame: " + error.status().message());
    }
    return error->to_status();
  }
  if (frame->header.type != MessageType::kSolveResponse) {
    close();
    return Status(StatusCode::kInternal,
                  std::string("unexpected frame type ") +
                      message_type_name(frame->header.type));
  }
  Result<WireResponse> wire_response = decode_solve_response(*frame);
  if (!wire_response.ok()) {
    close();
    return Status(StatusCode::kInternal, "undecodable response frame: " +
                                             wire_response.status().message());
  }

  RemoteResponse out;
  out.period = wire_response->period;
  out.winner = static_cast<StrategyId>(wire_response->winner);
  out.from_cache = wire_response->from_cache != 0;
  out.coalesced = wire_response->coalesced != 0;
  out.solve_ms = wire_response->solve_ms;
  out.total_ms = wire_response->total_ms;
  out.queue_ms = wire_response->queue_ms;
  out.certified = static_cast<int>(wire_response->certified);
  out.failed = static_cast<int>(wire_response->failed);
  out.skipped = static_cast<int>(wire_response->skipped);
  out.pruned = static_cast<int>(wire_response->pruned);
  out.proven_lower_bound = wire_response->proven_lower_bound;
  out.outcomes = std::move(wire_response->outcomes);
  return out;
}

Status Client::cancel(std::uint64_t request_id) {
  return send_all(encode_cancel(request_id, options_.tenant));
}

Result<ServerWireStats> Client::stats() {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  const std::uint64_t id = next_request_id_++;
  Status sent = send_all(encode_stats_request(id));
  if (!sent.ok()) return sent;
  const double timeout_ms =
      options_.response_timeout_ms > 0.0 ? options_.response_timeout_ms
                                         : 10'000.0;
  Result<Frame> frame = read_matching(id, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->header.type != MessageType::kStatsResponse) {
    return Status(StatusCode::kInternal,
                  std::string("unexpected frame type ") +
                      message_type_name(frame->header.type));
  }
  return decode_stats_response(*frame);
}

Result<ServerWireTrace> Client::trace() {
  if (fd_ < 0) return Status(StatusCode::kUnavailable, "client not connected");
  const std::uint64_t id = next_request_id_++;
  Status sent = send_all(encode_trace_request(id));
  if (!sent.ok()) return sent;
  const double timeout_ms =
      options_.response_timeout_ms > 0.0 ? options_.response_timeout_ms
                                         : 10'000.0;
  Result<Frame> frame = read_matching(id, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->header.type != MessageType::kTraceResponse) {
    return Status(StatusCode::kInternal,
                  std::string("unexpected frame type ") +
                      message_type_name(frame->header.type));
  }
  return decode_trace_response(*frame);
}

}  // namespace pmcast::net
