#include "net/protocol.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace pmcast::net {
namespace {

// "PMC1" as bytes; read back as a little-endian u32 this is 0x31434D50.
constexpr std::uint32_t kMagic = 0x31434D50u;

// ------------------------------------------------------------------ writer --

struct Writer {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u16(std::uint16_t v) {
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::string_view s) {
    buf.insert(buf.end(), s.begin(), s.end());
  }
};

// ------------------------------------------------------------------ reader --

/// Bounds-checked cursor over a payload. Every take_* checks remaining()
/// first; once failed() the reader stays failed and returns zeros, so a
/// decode function can run to the end and report one error.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool fail = false;

  std::size_t remaining() const { return fail ? 0 : data.size() - pos; }
  bool failed() const { return fail; }

  bool need(std::size_t n) {
    if (fail || data.size() - pos < n) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data[pos]) |
                      static_cast<std::uint16_t>(data[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str(std::size_t n) {
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
};

Status malformed(const std::string& what) {
  return Status(StatusCode::kInvalidArgument, "malformed frame: " + what);
}

/// A decoded count is only trusted after checking that the bytes it claims
/// to describe are actually present (elem_bytes per element, minimum 1).
bool count_fits(const Reader& r, std::uint64_t count, std::size_t elem_bytes) {
  return count <= r.remaining() / std::max<std::size_t>(elem_bytes, 1);
}

}  // namespace

const char* wire_error_name(WireError code) {
  switch (code) {
    case WireError::kInvalidArgument: return "invalid_argument";
    case WireError::kFailedPrecondition: return "failed_precondition";
    case WireError::kNotFound: return "not_found";
    case WireError::kDeadlineExceeded: return "deadline_exceeded";
    case WireError::kCancelled: return "cancelled";
    case WireError::kResourceExhausted: return "resource_exhausted";
    case WireError::kUnavailable: return "unavailable";
    case WireError::kInternal: return "internal";
    case WireError::kOverloaded: return "overloaded";
    case WireError::kShuttingDown: return "shutting_down";
    case WireError::kProtocol: return "protocol_error";
  }
  return "?";
}

StatusCode wire_error_status(WireError code) {
  switch (code) {
    case WireError::kInvalidArgument: return StatusCode::kInvalidArgument;
    case WireError::kFailedPrecondition: return StatusCode::kFailedPrecondition;
    case WireError::kNotFound: return StatusCode::kNotFound;
    case WireError::kDeadlineExceeded: return StatusCode::kDeadlineExceeded;
    case WireError::kCancelled: return StatusCode::kCancelled;
    case WireError::kResourceExhausted: return StatusCode::kResourceExhausted;
    case WireError::kUnavailable:
    case WireError::kOverloaded:
    case WireError::kShuttingDown: return StatusCode::kUnavailable;
    case WireError::kInternal:
    case WireError::kProtocol: return StatusCode::kInternal;
  }
  return StatusCode::kInternal;
}

WireError wire_error_from_status(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInternal: return WireError::kInternal;
    case StatusCode::kInvalidArgument: return WireError::kInvalidArgument;
    case StatusCode::kFailedPrecondition: return WireError::kFailedPrecondition;
    case StatusCode::kParseError: return WireError::kInvalidArgument;
    case StatusCode::kNotFound: return WireError::kNotFound;
    case StatusCode::kDeadlineExceeded: return WireError::kDeadlineExceeded;
    case StatusCode::kCancelled: return WireError::kCancelled;
    case StatusCode::kResourceExhausted: return WireError::kResourceExhausted;
    case StatusCode::kUnavailable: return WireError::kUnavailable;
  }
  return WireError::kInternal;
}

// ------------------------------------------------------------------ frames --

namespace {

std::vector<std::uint8_t> finish_frame(MessageType type, std::uint16_t flags,
                                       std::uint32_t tenant,
                                       std::uint64_t request_id,
                                       Writer payload) {
  Writer w;
  w.buf.reserve(kHeaderBytes + payload.buf.size());
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(flags);
  w.u32(tenant);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.buf.size()));
  w.buf.insert(w.buf.end(), payload.buf.begin(), payload.buf.end());
  return std::move(w.buf);
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MessageType::kSolveRequest) &&
         t <= static_cast<std::uint8_t>(MessageType::kTraceResponse);
}

}  // namespace

FrameStatus extract_frame(std::span<const std::uint8_t> buffer, Frame* frame,
                          std::size_t* consumed, std::string* error) {
  auto set_error = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return FrameStatus::kMalformed;
  };
  if (buffer.size() < kHeaderBytes) {
    // Reject garbage as early as its first bytes arrive: a partial header
    // whose magic prefix already mismatches can never become a frame.
    for (std::size_t i = 0; i < buffer.size() && i < 4; ++i) {
      if (buffer[i] != static_cast<std::uint8_t>(kMagic >> (8 * i))) {
        return set_error("bad magic");
      }
    }
    return FrameStatus::kNeedMore;
  }
  Reader r{buffer};
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) return set_error("bad magic");
  FrameHeader header;
  header.version = r.u8();
  const std::uint8_t raw_type = r.u8();
  header.flags = r.u16();
  header.tenant = r.u32();
  header.request_id = r.u64();
  header.payload_len = r.u32();
  if (header.version != kProtocolVersion) {
    return set_error("unsupported protocol version " +
                     std::to_string(header.version));
  }
  if (!known_type(raw_type)) {
    return set_error("unknown message type " + std::to_string(raw_type));
  }
  header.type = static_cast<MessageType>(raw_type);
  if (header.payload_len > kMaxPayload) {
    return set_error("payload length " + std::to_string(header.payload_len) +
                     " exceeds limit " + std::to_string(kMaxPayload));
  }
  const std::size_t total = kHeaderBytes + header.payload_len;
  if (buffer.size() < total) return FrameStatus::kNeedMore;
  frame->header = header;
  frame->payload.assign(buffer.begin() + kHeaderBytes,
                        buffer.begin() + static_cast<std::ptrdiff_t>(total));
  *consumed = total;
  return FrameStatus::kOk;
}

// ----------------------------------------------------------------- problem --

void encode_problem(const Problem& problem, std::vector<std::uint8_t>* out) {
  Writer w;
  w.buf = std::move(*out);

  w.u32(static_cast<std::uint32_t>(problem.graph.node_count()));

  // Canonical edge order, exactly as hash_instance sorts its triples.
  struct Triple {
    NodeId from;
    NodeId to;
    std::uint64_t cost_bits;
    bool operator<(const Triple& o) const {
      if (from != o.from) return from < o.from;
      if (to != o.to) return to < o.to;
      return cost_bits < o.cost_bits;
    }
  };
  std::vector<Triple> triples;
  triples.reserve(static_cast<std::size_t>(problem.graph.edge_count()));
  for (const Edge& e : problem.graph.edges()) {
    triples.push_back({e.from, e.to, std::bit_cast<std::uint64_t>(e.cost)});
  }
  std::sort(triples.begin(), triples.end());
  w.u32(static_cast<std::uint32_t>(triples.size()));
  for (const Triple& t : triples) {
    w.u32(static_cast<std::uint32_t>(t.from));
    w.u32(static_cast<std::uint32_t>(t.to));
    w.u64(t.cost_bits);
  }

  w.u32(static_cast<std::uint32_t>(problem.source));

  // Canonical target order: sorted, duplicates collapsed.
  std::vector<NodeId> targets = problem.targets;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  w.u32(static_cast<std::uint32_t>(targets.size()));
  for (NodeId t : targets) w.u32(static_cast<std::uint32_t>(t));

  *out = std::move(w.buf);
}

Result<Problem> decode_problem(std::span<const std::uint8_t> bytes,
                               std::size_t* pos) {
  Reader r{bytes, *pos};
  const std::uint32_t node_count = r.u32();
  if (r.failed()) return malformed("truncated problem node count");
  if (node_count == 0 || node_count > kMaxNodes) {
    return malformed("node count " + std::to_string(node_count) +
                     " out of range [1, " + std::to_string(kMaxNodes) + "]");
  }

  const std::uint32_t edge_count = r.u32();
  if (r.failed()) return malformed("truncated problem edge count");
  // 16 bytes per edge on the wire; reject before reserving anything.
  if (edge_count > kMaxEdges || !count_fits(r, edge_count, 16)) {
    return malformed("edge count " + std::to_string(edge_count) +
                     " does not fit the payload");
  }
  Digraph graph(static_cast<int>(node_count));
  for (std::uint32_t i = 0; i < edge_count; ++i) {
    const std::uint32_t from = r.u32();
    const std::uint32_t to = r.u32();
    const double cost = r.f64();
    if (r.failed()) return malformed("truncated edge list");
    if (from >= node_count || to >= node_count || from == to) {
      return malformed("edge " + std::to_string(from) + "->" +
                       std::to_string(to) + " has an invalid endpoint");
    }
    if (!std::isfinite(cost) || cost <= 0.0) {
      return malformed("edge cost must be finite and > 0");
    }
    graph.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to), cost);
  }

  const std::uint32_t source = r.u32();
  const std::uint32_t target_count = r.u32();
  if (r.failed()) return malformed("truncated source/target section");
  if (target_count > node_count || !count_fits(r, target_count, 4)) {
    return malformed("target count " + std::to_string(target_count) +
                     " does not fit the payload");
  }
  std::vector<NodeId> targets;
  targets.reserve(target_count);
  for (std::uint32_t i = 0; i < target_count; ++i) {
    const std::uint32_t t = r.u32();
    if (r.failed()) return malformed("truncated target list");
    if (t >= node_count) {
      return malformed("target id " + std::to_string(t) + " out of range");
    }
    targets.push_back(static_cast<NodeId>(t));
  }

  // Full structural validation (source in range and not a target, no
  // duplicate targets, non-empty target set) before the asserting
  // Problem constructor runs.
  if (source >= node_count) return malformed("source id out of range");
  Status valid =
      validate_problem(graph, static_cast<NodeId>(source), targets);
  if (!valid.ok()) {
    return Status(StatusCode::kInvalidArgument,
                  "malformed frame: " + valid.message());
  }
  *pos = r.pos;
  return Problem(std::move(graph), static_cast<NodeId>(source),
                 std::move(targets));
}

std::vector<StrategyId> strategies_from_mask(std::uint32_t mask) {
  std::vector<StrategyId> out;
  if (mask == 0) return out;
  for (StrategyId id : all_strategy_ids()) {
    if (mask & (1u << static_cast<unsigned>(id))) out.push_back(id);
  }
  return out;
}

std::uint32_t mask_from_strategies(std::span<const StrategyId> strategies) {
  std::uint32_t mask = 0;
  for (StrategyId id : strategies) mask |= 1u << static_cast<unsigned>(id);
  return mask;
}

// --------------------------------------------------------- fault injection --

FaultDecision apply_frame_fault(FaultPlan* plan, FaultPoint point,
                                std::vector<std::uint8_t>* bytes) {
  if (plan == nullptr) return {};
  FaultDecision decision = plan->poll(point);
  if (decision.action == FaultAction::kTruncate && bytes != nullptr) {
    const std::size_t drop =
        std::min<std::size_t>(decision.magnitude, bytes->size());
    bytes->resize(bytes->size() - drop);
  }
  return decision;
}

// ----------------------------------------------------------------- request --

SolveRequest WireRequest::to_solve_request() const {
  SolveRequest out;
  out.problem = problem;
  out.deadline_ms = no_deadline ? SolveRequest::kNoDeadline : deadline_ms;
  out.priority = priority;
  out.strategies = strategies_from_mask(strategy_mask);
  out.limits.exact_max_nodes = exact_max_nodes;
  out.limits.exact_max_trees = static_cast<std::size_t>(exact_max_trees);
  if (pruning != kInheritPruning) {
    out.pruning = static_cast<PruningPolicy>(pruning);
  }
  out.known_lower_bound = known_lower_bound;
  return out;
}

std::vector<std::uint8_t> encode_solve_request(const WireRequest& request) {
  Writer p;
  p.f64(request.no_deadline ? 0.0 : request.deadline_ms);
  p.i32(request.priority);
  p.u32(request.strategy_mask);
  p.i32(request.exact_max_nodes);
  p.u64(request.exact_max_trees);
  p.u8(request.pruning);
  p.f64(request.known_lower_bound);
  encode_problem(request.problem, &p.buf);
  return finish_frame(MessageType::kSolveRequest,
                      request.no_deadline ? kFlagNoDeadline : std::uint16_t{0},
                      request.tenant, request.request_id, std::move(p));
}

Result<WireRequest> decode_solve_request(const Frame& frame) {
  if (frame.header.type != MessageType::kSolveRequest) {
    return malformed("not a solve_request frame");
  }
  WireRequest out;
  out.tenant = frame.header.tenant;
  out.request_id = frame.header.request_id;
  out.no_deadline = (frame.header.flags & kFlagNoDeadline) != 0;

  Reader r{frame.payload};
  out.deadline_ms = r.f64();
  out.priority = r.i32();
  out.strategy_mask = r.u32();
  out.exact_max_nodes = r.i32();
  out.exact_max_trees = r.u64();
  out.pruning = r.u8();
  out.known_lower_bound = r.f64();
  if (r.failed()) return malformed("truncated solve_request body");
  // Sentinel safety: relative deadlines are non-negative finite ms, and the
  // only spelling of "no deadline" is the header flag.
  if (!std::isfinite(out.deadline_ms) || out.deadline_ms < 0.0) {
    return malformed("deadline must be finite and >= 0 "
                     "(use the no-deadline flag, not a sentinel)");
  }
  if (out.no_deadline && out.deadline_ms != 0.0) {
    return malformed("no-deadline flag with a nonzero deadline");
  }
  if (out.pruning != WireRequest::kInheritPruning &&
      out.pruning > static_cast<std::uint8_t>(PruningPolicy::Aggressive)) {
    return malformed("unknown pruning policy " + std::to_string(out.pruning));
  }
  if (!std::isfinite(out.known_lower_bound) || out.known_lower_bound < 0.0) {
    return malformed("known lower bound must be finite and >= 0");
  }

  std::size_t pos = r.pos;
  Result<Problem> problem = decode_problem(frame.payload, &pos);
  if (!problem.ok()) return problem.status();
  if (pos != frame.payload.size()) {
    return malformed("trailing bytes after solve_request body");
  }
  out.problem = std::move(*problem);
  return out;
}

// ---------------------------------------------------------------- response --

WireResponse make_wire_response(std::uint64_t request_id,
                                const SolveResponse& response,
                                double queue_ms, bool brownout) {
  WireResponse out;
  out.request_id = request_id;
  out.period = response.period;
  out.winner = static_cast<std::uint8_t>(response.winner);
  out.from_cache = response.provenance.from_cache ? 1 : 0;
  out.coalesced = response.provenance.coalesced ? 1 : 0;
  out.brownout = brownout ? 1 : 0;
  out.solve_ms = response.timing.solve_ms;
  out.total_ms = response.timing.total_ms;
  out.queue_ms = queue_ms;
  out.certified = static_cast<std::uint32_t>(response.certificate.certified);
  out.failed = static_cast<std::uint32_t>(response.certificate.failed);
  out.skipped = static_cast<std::uint32_t>(response.certificate.skipped);
  out.pruned = static_cast<std::uint32_t>(response.certificate.pruned);
  out.proven_lower_bound = response.pruning.proven_lower_bound;
  for (const StrategyOutcome& o : response.outcomes) {
    if (out.outcomes.size() >= kMaxOutcomes) break;
    out.outcomes.push_back({static_cast<std::uint8_t>(o.strategy),
                            static_cast<std::uint8_t>(o.state), o.period,
                            o.elapsed_ms});
  }
  return out;
}

std::vector<std::uint8_t> encode_solve_response(const WireResponse& response,
                                                std::uint32_t tenant) {
  Writer p;
  p.f64(response.period);
  p.u8(response.winner);
  p.u8(response.from_cache);
  p.u8(response.coalesced);
  p.u8(response.brownout);
  p.f64(response.solve_ms);
  p.f64(response.total_ms);
  p.f64(response.queue_ms);
  p.u32(response.certified);
  p.u32(response.failed);
  p.u32(response.skipped);
  p.u32(response.pruned);
  p.f64(response.proven_lower_bound);
  p.u32(static_cast<std::uint32_t>(
      std::min<std::size_t>(response.outcomes.size(), kMaxOutcomes)));
  std::size_t emitted = 0;
  for (const WireOutcome& o : response.outcomes) {
    if (emitted++ >= kMaxOutcomes) break;
    p.u8(o.strategy);
    p.u8(o.state);
    p.f64(o.period);
    p.f64(o.elapsed_ms);
  }
  return finish_frame(MessageType::kSolveResponse, 0, tenant,
                      response.request_id, std::move(p));
}

Result<WireResponse> decode_solve_response(const Frame& frame) {
  if (frame.header.type != MessageType::kSolveResponse) {
    return malformed("not a solve_response frame");
  }
  WireResponse out;
  out.request_id = frame.header.request_id;
  Reader r{frame.payload};
  out.period = r.f64();
  out.winner = r.u8();
  out.from_cache = r.u8();
  out.coalesced = r.u8();
  out.brownout = r.u8();
  out.solve_ms = r.f64();
  out.total_ms = r.f64();
  out.queue_ms = r.f64();
  out.certified = r.u32();
  out.failed = r.u32();
  out.skipped = r.u32();
  out.pruned = r.u32();
  out.proven_lower_bound = r.f64();
  const std::uint32_t n_outcomes = r.u32();
  if (r.failed()) return malformed("truncated solve_response body");
  if (n_outcomes > kMaxOutcomes || !count_fits(r, n_outcomes, 18)) {
    return malformed("outcome count " + std::to_string(n_outcomes) +
                     " does not fit the payload");
  }
  out.outcomes.reserve(n_outcomes);
  for (std::uint32_t i = 0; i < n_outcomes; ++i) {
    WireOutcome o;
    o.strategy = r.u8();
    o.state = r.u8();
    o.period = r.f64();
    o.elapsed_ms = r.f64();
    if (r.failed()) return malformed("truncated outcome list");
    out.outcomes.push_back(o);
  }
  if (r.remaining() != 0) {
    return malformed("trailing bytes after solve_response body");
  }
  return out;
}

// ------------------------------------------------------------------- error --

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       std::uint32_t tenant, WireError code,
                                       std::string_view message) {
  if (message.size() > kMaxErrorMessage) {
    message = message.substr(0, kMaxErrorMessage);
  }
  Writer p;
  p.u16(static_cast<std::uint16_t>(code));
  p.u32(static_cast<std::uint32_t>(message.size()));
  p.bytes(message);
  return finish_frame(MessageType::kError, 0, tenant, request_id,
                      std::move(p));
}

Result<WireErrorMessage> decode_error(const Frame& frame) {
  if (frame.header.type != MessageType::kError) {
    return malformed("not an error frame");
  }
  WireErrorMessage out;
  out.request_id = frame.header.request_id;
  Reader r{frame.payload};
  const std::uint16_t raw = r.u16();
  const std::uint32_t len = r.u32();
  if (r.failed()) return malformed("truncated error frame");
  if (raw < static_cast<std::uint16_t>(WireError::kInvalidArgument) ||
      raw > static_cast<std::uint16_t>(WireError::kProtocol)) {
    return malformed("unknown error code " + std::to_string(raw));
  }
  out.code = static_cast<WireError>(raw);
  if (len > kMaxErrorMessage || len > r.remaining()) {
    return malformed("error message length does not fit the payload");
  }
  out.message = r.str(len);
  if (r.remaining() != 0) return malformed("trailing bytes after error");
  return out;
}

// ------------------------------------------------------------ cancel/stats --

std::vector<std::uint8_t> encode_cancel(std::uint64_t request_id,
                                        std::uint32_t tenant) {
  return finish_frame(MessageType::kCancel, 0, tenant, request_id, Writer{});
}

std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id) {
  return finish_frame(MessageType::kStatsRequest, 0, 0, request_id, Writer{});
}

std::vector<std::uint8_t> encode_stats_response(const ServerWireStats& stats,
                                                std::uint64_t request_id) {
  Writer p;
  p.f64(stats.uptime_ms);
  p.u64(stats.connections_accepted);
  p.u64(stats.connections_open);
  p.u64(stats.requests_admitted);
  p.u64(stats.brownout_admitted);
  p.u64(stats.responses_sent);
  p.u64(stats.errors_sent);
  p.u64(stats.shed_qps);
  p.u64(stats.shed_in_flight);
  p.u64(stats.shed_deadline);
  p.u64(stats.shed_shutdown);
  p.u64(stats.protocol_errors);
  p.u64(stats.closed_idle_timeout);
  p.u64(stats.closed_read_timeout);
  p.u64(stats.closed_backpressure);
  p.u64(stats.faults_injected);
  p.u64(stats.in_flight);
  p.u32(stats.worker_threads);
  p.u32(stats.cache_shards);
  p.u64(stats.cache_hits);
  p.u64(stats.cache_misses);
  p.u64(stats.cache_entries);
  p.f64(stats.ewma_solve_ms);
  return finish_frame(MessageType::kStatsResponse, 0, 0, request_id,
                      std::move(p));
}

Result<ServerWireStats> decode_stats_response(const Frame& frame) {
  if (frame.header.type != MessageType::kStatsResponse) {
    return malformed("not a stats_response frame");
  }
  ServerWireStats out;
  Reader r{frame.payload};
  out.uptime_ms = r.f64();
  out.connections_accepted = r.u64();
  out.connections_open = r.u64();
  out.requests_admitted = r.u64();
  out.brownout_admitted = r.u64();
  out.responses_sent = r.u64();
  out.errors_sent = r.u64();
  out.shed_qps = r.u64();
  out.shed_in_flight = r.u64();
  out.shed_deadline = r.u64();
  out.shed_shutdown = r.u64();
  out.protocol_errors = r.u64();
  out.closed_idle_timeout = r.u64();
  out.closed_read_timeout = r.u64();
  out.closed_backpressure = r.u64();
  out.faults_injected = r.u64();
  out.in_flight = r.u64();
  out.worker_threads = r.u32();
  out.cache_shards = r.u32();
  out.cache_hits = r.u64();
  out.cache_misses = r.u64();
  out.cache_entries = r.u64();
  out.ewma_solve_ms = r.f64();
  if (r.failed()) return malformed("truncated stats_response body");
  if (r.remaining() != 0) {
    return malformed("trailing bytes after stats_response body");
  }
  return out;
}

// ------------------------------------------------------------------- trace --

std::vector<std::uint8_t> encode_trace_request(std::uint64_t request_id) {
  return finish_frame(MessageType::kTraceRequest, 0, 0, request_id, Writer{});
}

namespace {

void put_predicate(Writer& w, const WirePredicateTrace& p) {
  w.u64(p.evaluated);
  w.u64(p.hits);
  w.f64(p.closest_miss);
}

WirePredicateTrace take_predicate(Reader& r) {
  WirePredicateTrace p;
  p.evaluated = r.u64();
  p.hits = r.u64();
  p.closest_miss = r.f64();
  return p;
}

}  // namespace

std::vector<std::uint8_t> encode_trace_response(const ServerWireTrace& trace,
                                                std::uint64_t request_id) {
  Writer p;
  p.u8(trace.detail);
  put_predicate(p, trace.sub_scatter);
  put_predicate(p, trace.early_win);
  put_predicate(p, trace.probe_poll);
  put_predicate(p, trace.reconstruct_skip);
  p.u32(static_cast<std::uint32_t>(std::min<std::size_t>(
      trace.checkpoint_hist.size(), kMaxTraceHistBuckets)));
  std::size_t buckets = 0;
  for (std::uint64_t b : trace.checkpoint_hist) {
    if (buckets++ >= kMaxTraceHistBuckets) break;
    p.u64(b);
  }
  p.u64(trace.checkpoint_polls);
  p.f64(trace.checkpoint_total_us);
  p.f64(trace.checkpoint_max_us);
  p.u32(static_cast<std::uint32_t>(
      std::min<std::size_t>(trace.shard_heat.size(), kMaxTraceShards)));
  std::size_t shards = 0;
  for (const WireShardHeat& s : trace.shard_heat) {
    if (shards++ >= kMaxTraceShards) break;
    p.u64(s.hits);
    p.u64(s.misses);
    p.u64(s.evictions);
    p.u64(s.entries);
  }
  return finish_frame(MessageType::kTraceResponse, 0, 0, request_id,
                      std::move(p));
}

Result<ServerWireTrace> decode_trace_response(const Frame& frame) {
  if (frame.header.type != MessageType::kTraceResponse) {
    return malformed("not a trace_response frame");
  }
  ServerWireTrace out;
  Reader r{frame.payload};
  out.detail = r.u8();
  out.sub_scatter = take_predicate(r);
  out.early_win = take_predicate(r);
  out.probe_poll = take_predicate(r);
  out.reconstruct_skip = take_predicate(r);
  const std::uint32_t n_buckets = r.u32();
  if (r.failed()) return malformed("truncated trace_response body");
  if (n_buckets > kMaxTraceHistBuckets || !count_fits(r, n_buckets, 8)) {
    return malformed("histogram bucket count " + std::to_string(n_buckets) +
                     " does not fit the payload");
  }
  out.checkpoint_hist.reserve(n_buckets);
  for (std::uint32_t i = 0; i < n_buckets; ++i) {
    out.checkpoint_hist.push_back(r.u64());
  }
  out.checkpoint_polls = r.u64();
  out.checkpoint_total_us = r.f64();
  out.checkpoint_max_us = r.f64();
  const std::uint32_t n_shards = r.u32();
  if (r.failed()) return malformed("truncated trace_response checkpoints");
  if (n_shards > kMaxTraceShards || !count_fits(r, n_shards, 32)) {
    return malformed("shard count " + std::to_string(n_shards) +
                     " does not fit the payload");
  }
  out.shard_heat.reserve(n_shards);
  for (std::uint32_t i = 0; i < n_shards; ++i) {
    WireShardHeat s;
    s.hits = r.u64();
    s.misses = r.u64();
    s.evictions = r.u64();
    s.entries = r.u64();
    if (r.failed()) return malformed("truncated shard heat list");
    out.shard_heat.push_back(s);
  }
  if (r.remaining() != 0) {
    return malformed("trailing bytes after trace_response body");
  }
  return out;
}

}  // namespace pmcast::net
