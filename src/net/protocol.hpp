#pragma once
/// \file protocol.hpp
/// The pmcast binary wire protocol: compact length-prefixed frames carrying
/// solve requests, responses, errors, cancellations and server statistics
/// between a thin remote client and the resident daemon (src/net/server.hpp).
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic       "PMC1" (0x50 0x4D 0x43 0x31 on the wire)
///   4       1     version     kProtocolVersion (1)
///   5       1     type        MessageType
///   6       2     flags       bit 0 = kFlagNoDeadline (solve requests)
///   8       4     tenant      admission-control tenant id
///   12      8     request_id  caller-chosen correlation id, echoed back
///   20      4     payload_len bytes following this header (<= kMaxPayload)
///   24      ...   payload     message-type specific
///
/// Decoding is strictly bounds-checked and never trusts peer lengths: every
/// count is validated against the bytes actually present *before* any
/// allocation sized by it, and every hard cap (kMaxPayload, kMaxNodes,
/// kMaxEdges, ...) is enforced on both ends. A malformed frame is a
/// protocol error — with a corrupted length prefix there is no way to
/// resynchronise a byte stream, so the peer closes the connection.
///
/// The platform payload reuses the canonical instance encoding of
/// src/graph/hash.*: edges are serialised as the sorted multiset of
/// (from, to, cost-bits) triples and targets as the sorted duplicate-free
/// set. Two requests for the same instance therefore serialise to identical
/// bytes regardless of construction order, and encode→decode→encode is
/// byte-stable. Node names are not transmitted (they never influence a
/// solver, and hash_instance ignores them).
///
/// Deadlines travel as *relative* milliseconds (anchored by the server when
/// the request enters its Service): 0 inherits the server's default
/// deadline, and "no deadline at all" is the kFlagNoDeadline header bit —
/// never a negative or sentinel float on the wire, so the in-memory
/// SolveRequest::kNoDeadline sentinel value cannot leak into (or be forged
/// from) a frame. A negative or non-finite wire deadline is malformed.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/faultpoint.hpp"
#include "pmcast/problem.hpp"
#include "pmcast/request.hpp"
#include "pmcast/response.hpp"
#include "pmcast/status.hpp"

namespace pmcast::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
/// Hard cap on a frame payload. Generous for any plausible platform (a
/// 16 MiB payload holds ~800k edges) while bounding what one peer can make
/// the other buffer.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;
inline constexpr std::uint32_t kMaxNodes = 1u << 20;
inline constexpr std::uint32_t kMaxEdges = 4u << 20;
inline constexpr std::uint32_t kMaxOutcomes = 64;
inline constexpr std::uint32_t kMaxErrorMessage = 16u << 10;

/// Header flag bits.
inline constexpr std::uint16_t kFlagNoDeadline = 1u << 0;

enum class MessageType : std::uint8_t {
  kSolveRequest = 1,   ///< client -> server: solve one instance
  kSolveResponse = 2,  ///< server -> client: certified answer
  kError = 3,          ///< server -> client: request failed / was shed
  kCancel = 4,         ///< client -> server: cancel an in-flight request_id
  kStatsRequest = 5,   ///< client -> server: snapshot request (empty payload)
  kStatsResponse = 6,  ///< server -> client: ServerWireStats
  kTraceRequest = 7,   ///< client -> server: profiling snapshot (empty payload)
  kTraceResponse = 8,  ///< server -> client: ServerWireTrace
};

inline const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kSolveRequest: return "solve_request";
    case MessageType::kSolveResponse: return "solve_response";
    case MessageType::kError: return "error";
    case MessageType::kCancel: return "cancel";
    case MessageType::kStatsRequest: return "stats_request";
    case MessageType::kStatsResponse: return "stats_response";
    case MessageType::kTraceRequest: return "trace_request";
    case MessageType::kTraceResponse: return "trace_response";
  }
  return "?";
}

/// Wire error codes. Mostly mirrors StatusCode, plus serving-specific
/// conditions: kOverloaded (admission control shed the request before any
/// solver budget was spent) and kShuttingDown (the daemon is draining).
enum class WireError : std::uint16_t {
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kNotFound = 3,
  kDeadlineExceeded = 4,
  kCancelled = 5,
  kResourceExhausted = 6,
  kUnavailable = 7,
  kInternal = 8,
  kOverloaded = 9,     ///< shed by admission control (quota / queue delay)
  kShuttingDown = 10,  ///< daemon draining; retry against another instance
  kProtocol = 11,      ///< peer sent a malformed frame
};

const char* wire_error_name(WireError code);
/// Map a wire error onto the client-visible Status model. kOverloaded and
/// kShuttingDown both map to kUnavailable (retryable), keeping the wire
/// distinction in the message text.
StatusCode wire_error_status(WireError code);
/// Map a Status onto the closest wire error (server side).
WireError wire_error_from_status(StatusCode code);

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  MessageType type = MessageType::kSolveRequest;
  std::uint16_t flags = 0;
  std::uint32_t tenant = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

/// One complete frame peeled off a byte stream.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

enum class FrameStatus {
  kOk,        ///< one frame extracted; *consumed bytes were used
  kNeedMore,  ///< buffer holds a valid prefix of a frame; read more bytes
  kMalformed, ///< bad magic/version/type/length — close the connection
};

/// Try to peel one frame off the front of \p buffer. On kOk, \p frame and
/// \p consumed are set; on kMalformed, \p error describes the problem.
/// Never consumes bytes except on kOk.
FrameStatus extract_frame(std::span<const std::uint8_t> buffer, Frame* frame,
                          std::size_t* consumed, std::string* error);

// ---------------------------------------------------------------- request --

/// A solve request as it travels on the wire. Everything a remote caller
/// may set on a SolveRequest except the process-local cancellation token
/// (remote cancellation is the kCancel message).
struct WireRequest {
  std::uint32_t tenant = 0;
  std::uint64_t request_id = 0;
  /// Explicit opt-out of any deadline (kFlagNoDeadline on the wire).
  bool no_deadline = false;
  /// Relative deadline in ms; 0 inherits the server default. Must be
  /// finite and >= 0 (the no-deadline case is the flag, not a sentinel).
  double deadline_ms = 0.0;
  int priority = 0;
  /// Bit i allows StrategyId(i); 0 = the server's full portfolio.
  std::uint32_t strategy_mask = 0;
  int exact_max_nodes = -1;        ///< < 0 inherits the server default
  std::uint64_t exact_max_trees = 0;  ///< 0 inherits the server default
  /// PruningPolicy as u8; kInheritPruning = server default.
  static constexpr std::uint8_t kInheritPruning = 0xFF;
  std::uint8_t pruning = kInheritPruning;
  double known_lower_bound = 0.0;
  Problem problem;

  /// Build the in-process SolveRequest (deadline sentinel restored,
  /// strategy mask expanded). The cancellation token is left default —
  /// the server wires its own per-request token.
  SolveRequest to_solve_request() const;
};

std::vector<std::uint8_t> encode_solve_request(const WireRequest& request);
Result<WireRequest> decode_solve_request(const Frame& frame);

// --------------------------------------------------------------- response --

struct WireOutcome {
  std::uint8_t strategy = 0;
  std::uint8_t state = 0;
  double period = 0.0;
  double elapsed_ms = 0.0;
};

struct WireResponse {
  std::uint64_t request_id = 0;
  double period = 0.0;
  std::uint8_t winner = 0;
  std::uint8_t from_cache = 0;
  std::uint8_t coalesced = 0;
  /// 1 when admission degraded this request to the cheap-arm allowlist
  /// (brownout): the answer is heuristic-only, no exact/CG arm ran.
  std::uint8_t brownout = 0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  /// Server-side delay between frame decode and Service submission (the
  /// admission/event-loop overhead a remote caller cannot observe).
  double queue_ms = 0.0;
  std::uint32_t certified = 0;
  std::uint32_t failed = 0;
  std::uint32_t skipped = 0;
  std::uint32_t pruned = 0;
  double proven_lower_bound = 0.0;
  std::vector<WireOutcome> outcomes;
};

/// Flatten a certified SolveResponse for the wire. \p brownout marks a
/// response produced under the degraded heuristic-only allowlist.
WireResponse make_wire_response(std::uint64_t request_id,
                                const SolveResponse& response,
                                double queue_ms, bool brownout = false);

std::vector<std::uint8_t> encode_solve_response(const WireResponse& response,
                                                std::uint32_t tenant = 0);
Result<WireResponse> decode_solve_response(const Frame& frame);

// ------------------------------------------------------------------ error --

struct WireErrorMessage {
  std::uint64_t request_id = 0;
  WireError code = WireError::kInternal;
  std::string message;

  /// The client-visible Status for this wire error.
  Status to_status() const {
    return Status(wire_error_status(code),
                  std::string(wire_error_name(code)) + ": " + message);
  }
};

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       std::uint32_t tenant, WireError code,
                                       std::string_view message);
Result<WireErrorMessage> decode_error(const Frame& frame);

// ----------------------------------------------------------- cancel/stats --

/// Cancel has an empty payload: the request_id to cancel rides the header.
std::vector<std::uint8_t> encode_cancel(std::uint64_t request_id,
                                        std::uint32_t tenant);
std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id = 0);

/// Daemon counters as served to a kStatsRequest.
struct ServerWireStats {
  double uptime_ms = 0.0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t brownout_admitted = 0;  ///< admitted under the cheap allowlist
  std::uint64_t responses_sent = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t shed_qps = 0;        ///< token bucket empty
  std::uint64_t shed_in_flight = 0;  ///< per-tenant in-flight cap
  std::uint64_t shed_deadline = 0;   ///< est. queue delay > request deadline
  std::uint64_t shed_shutdown = 0;   ///< rejected while draining
  std::uint64_t protocol_errors = 0;
  std::uint64_t closed_idle_timeout = 0;  ///< idle past ServerOptions bound
  std::uint64_t closed_read_timeout = 0;  ///< partial frame stalled too long
  std::uint64_t closed_backpressure = 0;  ///< output queue exceeded its cap
  std::uint64_t faults_injected = 0;      ///< fired fault-plan decisions
  std::uint64_t in_flight = 0;
  std::uint32_t worker_threads = 0;
  std::uint32_t cache_shards = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  double ewma_solve_ms = 0.0;

  std::uint64_t total_shed() const {
    return shed_qps + shed_in_flight + shed_deadline + shed_shutdown;
  }
  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

std::vector<std::uint8_t> encode_stats_response(const ServerWireStats& stats,
                                                std::uint64_t request_id = 0);
Result<ServerWireStats> decode_stats_response(const Frame& frame);

// ------------------------------------------------------------------- trace --

/// Trace request has an empty payload, like stats.
std::vector<std::uint8_t> encode_trace_request(std::uint64_t request_id = 0);

/// Hard caps on the variable-length trace sections. The histogram is 16
/// buckets today; the cap leaves room to grow without a protocol bump.
inline constexpr std::uint32_t kMaxTraceHistBuckets = 64;
inline constexpr std::uint32_t kMaxTraceShards = 1u << 10;

/// One cut predicate's accounting as it travels on the wire (mirrors
/// pmcast::CutPredicateTrace).
struct WirePredicateTrace {
  std::uint64_t evaluated = 0;
  std::uint64_t hits = 0;
  double closest_miss = 0.0;
};

/// Per-cache-shard heat counters (mirrors CacheMetrics::ShardHeat).
struct WireShardHeat {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
};

/// The daemon's cumulative profiling view as served to a kTraceRequest:
/// the Service-wide aggregate SolveTrace (counters only — timelines stay
/// on individual responses) plus the ResultCache per-shard heat map.
struct ServerWireTrace {
  /// Aggregate TraceDetail as u8 (max detail any merged solve ran at).
  std::uint8_t detail = 0;
  /// Fixed predicate order: sub_scatter, early_win, probe_poll,
  /// reconstruct_skip — new predicates append.
  WirePredicateTrace sub_scatter;
  WirePredicateTrace early_win;
  WirePredicateTrace probe_poll;
  WirePredicateTrace reconstruct_skip;
  std::vector<std::uint64_t> checkpoint_hist;
  std::uint64_t checkpoint_polls = 0;
  double checkpoint_total_us = 0.0;
  double checkpoint_max_us = 0.0;
  std::vector<WireShardHeat> shard_heat;

  double checkpoint_mean_us() const {
    return checkpoint_polls == 0
               ? 0.0
               : checkpoint_total_us / static_cast<double>(checkpoint_polls);
  }
};

std::vector<std::uint8_t> encode_trace_response(const ServerWireTrace& trace,
                                                std::uint64_t request_id = 0);
Result<ServerWireTrace> decode_trace_response(const Frame& frame);

// ------------------------------------------------- canonical problem body --
// Exposed for the round-trip property tests; the request codec uses them.

/// Append the canonical instance encoding of \p problem to \p out.
void encode_problem(const Problem& problem, std::vector<std::uint8_t>* out);

/// Decode and *validate* a problem (ids in range, source not a target, no
/// duplicate targets) from \p bytes starting at \p *pos; advances \p *pos.
Result<Problem> decode_problem(std::span<const std::uint8_t> bytes,
                               std::size_t* pos);

/// Expand a strategy bitmask into the allowlist vector (empty = all).
std::vector<StrategyId> strategies_from_mask(std::uint32_t mask);
std::uint32_t mask_from_strategies(std::span<const StrategyId> strategies);

// --------------------------------------------------------- fault injection --

/// Poll \p plan at \p point and apply any frame-level fault to \p bytes in
/// place: kTruncate drops the last `magnitude` bytes of the encoded frame
/// (at most the whole frame), which is indistinguishable on the wire from a
/// peer dying mid-send. Connection-level actions (kReset, kDelay, short
/// writes) are returned untouched for the I/O site to act on. A null plan
/// is a no-op returning an empty decision.
FaultDecision apply_frame_fault(FaultPlan* plan, FaultPoint point,
                                std::vector<std::uint8_t>* bytes);

}  // namespace pmcast::net
