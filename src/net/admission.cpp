#include "net/admission.hpp"

#include <algorithm>

namespace pmcast::net {

AdmissionController::AdmissionController(Options options)
    : options_(std::move(options)) {}

AdmissionController::TenantState& AdmissionController::state_for(
    std::uint32_t tenant, double now_ms) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  TenantState& state = it->second;
  if (inserted) {
    auto quota_it = options_.tenant_quotas.find(tenant);
    state.quota = quota_it != options_.tenant_quotas.end()
                      ? quota_it->second
                      : options_.default_quota;
  }
  if (!state.primed) {
    // First sight of this tenant: a full bucket, so short bursts from a
    // fresh tenant are not penalised by an arbitrary epoch.
    state.tokens = state.quota.burst > 0.0 ? state.quota.burst
                                           : std::max(state.quota.qps, 1.0);
    state.last_refill_ms = now_ms;
    state.primed = true;
  }
  return state;
}

AdmissionDecision AdmissionController::admit(std::uint32_t tenant,
                                             double now_ms, double deadline_ms,
                                             int worker_threads,
                                             bool brownout_enabled) {
  TenantState& state = state_for(tenant, now_ms);

  // In-flight caps first: they bound memory and queue growth regardless of
  // arrival rate, and apply to no-deadline requests too (a request that is
  // willing to wait forever must not be allowed to queue forever).
  if (options_.global_max_in_flight > 0 &&
      global_in_flight_ >= options_.global_max_in_flight) {
    return AdmissionDecision::kShedInFlight;
  }
  if (state.quota.max_in_flight > 0 &&
      state.in_flight >= state.quota.max_in_flight) {
    return AdmissionDecision::kShedInFlight;
  }

  // Token bucket at ms resolution; clock never moves backwards by contract
  // (monotone clock), but clamp anyway so a bad caller cannot mint tokens.
  if (state.quota.qps > 0.0) {
    const double burst = state.quota.burst > 0.0
                             ? state.quota.burst
                             : std::max(state.quota.qps, 1.0);
    const double elapsed_ms = std::max(0.0, now_ms - state.last_refill_ms);
    state.tokens = std::min(
        burst, state.tokens + elapsed_ms * state.quota.qps / 1000.0);
    state.last_refill_ms = now_ms;
    if (state.tokens < 1.0) return AdmissionDecision::kShedQps;
  }

  // Deadline-aware shedding: only for requests that actually carry a
  // deadline (deadline_ms >= 0; negative = no deadline).
  AdmissionDecision verdict = AdmissionDecision::kAdmit;
  if (deadline_ms >= 0.0) {
    const double est = estimated_queue_delay_ms(worker_threads);
    if (est * options_.shed_safety_factor > deadline_ms) {
      if (!brownout_enabled) return AdmissionDecision::kShedDeadline;
      // Brownout second chance: would the cheap heuristic arms alone still
      // make the deadline? Degrade answer quality before availability; shed
      // only when even the degraded portfolio cannot make it.
      const double est_cheap = estimated_brownout_delay_ms(worker_threads);
      if (est_cheap * options_.shed_safety_factor > deadline_ms) {
        return AdmissionDecision::kShedDeadline;
      }
      verdict = AdmissionDecision::kAdmitBrownout;
    }
  }

  if (state.quota.qps > 0.0) state.tokens -= 1.0;
  ++state.in_flight;
  ++global_in_flight_;
  return verdict;
}

void AdmissionController::complete(std::uint32_t tenant, double solve_ms,
                                   bool brownout) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.in_flight > 0) {
    --it->second.in_flight;
  }
  if (global_in_flight_ > 0) --global_in_flight_;
  if (solve_ms >= 0.0) {
    double& ewma = brownout ? ewma_brownout_ms_ : ewma_solve_ms_;
    bool& primed = brownout ? ewma_brownout_primed_ : ewma_primed_;
    if (!primed) {
      ewma = solve_ms;
      primed = true;
    } else {
      ewma += options_.ewma_alpha * (solve_ms - ewma);
    }
  }
}

double AdmissionController::estimated_queue_delay_ms(
    int worker_threads) const {
  if (!ewma_primed_ || global_in_flight_ == 0) return 0.0;
  const double lanes = static_cast<double>(std::max(worker_threads, 1));
  return static_cast<double>(global_in_flight_) / lanes * ewma_solve_ms_;
}

double AdmissionController::estimated_brownout_delay_ms(
    int worker_threads) const {
  if (!ewma_brownout_primed_ || global_in_flight_ == 0) return 0.0;
  const double lanes = static_cast<double>(std::max(worker_threads, 1));
  return static_cast<double>(global_in_flight_) / lanes * ewma_brownout_ms_;
}

int AdmissionController::tenant_in_flight(std::uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.in_flight : 0;
}

}  // namespace pmcast::net
