#pragma once
/// \file client.hpp
/// Thin blocking client for the pmcast daemon (src/net/server.hpp). One
/// Client owns one TCP connection and issues one request at a time —
/// the cheap-remote-round-trip half of the resident-daemon split: all hot
/// state (worker pool, warm LP bases, result cache) lives in the server
/// process, so a client round-trip for a cached instance costs a network
/// hop instead of a portfolio solve.
///
/// Concurrency model: a Client is not thread-safe and pipelines nothing;
/// open one Client per concurrent caller (connections are cheap, the
/// daemon multiplexes thousands). solve() blocks until the response or
/// error frame for its request id arrives.
///
/// Deadlines travel as relative milliseconds and are re-anchored by the
/// server on arrival (clock skew between hosts never taints a deadline);
/// SolveRequest::kNoDeadline is preserved end-to-end as a protocol flag,
/// never as a sentinel float on the wire. The client additionally bounds
/// its own blocking time: deadline + ClientOptions::response_slack_ms for
/// deadline'd requests, ClientOptions::response_timeout_ms otherwise.

#include <cstdint>
#include <memory>
#include <string>

#include "net/faultpoint.hpp"
#include "net/protocol.hpp"
#include "pmcast/request.hpp"
#include "pmcast/status.hpp"

namespace pmcast::net {

/// Capped-exponential-backoff retry policy for solve(). Retries happen only
/// for conditions where resending is safe AND useful: the transport died
/// (kUnavailable from a dead socket — the old connection is closed first,
/// so the daemon cannot answer the original twice) or the server explicitly
/// said kUnavailable/kShuttingDown. kOverloaded is deliberately *not*
/// retried: hammering a shedding server amplifies the overload it is
/// shedding. Timeouts and protocol errors are never retried either — there
/// the server may still be working on (or confused by) the original.
///
/// Solves are idempotent on the server (same canonical instance key,
/// cache-backed), so the worst a retry can do is recompute.
struct RetryPolicy {
  /// Total attempts including the first (1 = never retry). The default
  /// preserves the historical dial-again-once behaviour.
  int max_attempts = 2;
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 1'000.0;
  double backoff_multiplier = 2.0;
  /// Jitter fraction: each backoff is scaled by a factor drawn uniformly
  /// from [1 - jitter, 1 + jitter]. Drawn from a PRNG seeded by (seed,
  /// request id), so a seeded client's backoff schedule is reproducible.
  double jitter = 0.2;
  std::uint64_t seed = 0;
  /// Wall-clock cap across *all* attempts of one solve(), backoffs
  /// included (0 = none). When exceeded, solve() returns the last error.
  double attempt_deadline_ms = 0.0;
};

struct ClientOptions {
  /// Tenant id stamped on every frame (admission control key).
  std::uint32_t tenant = 0;
  /// Wall-clock cap on waiting for a response when the request carries no
  /// deadline; 0 = wait forever.
  double response_timeout_ms = 0.0;
  /// Extra wait beyond a request's own deadline before giving up on the
  /// socket (covers transfer + scheduling noise).
  double response_slack_ms = 2'000.0;
  /// Cap on establishing a TCP connection (non-blocking connect + poll);
  /// 0 = the OS default. A timeout maps to kUnavailable, so the retry
  /// policy covers unreachable endpoints too.
  double connect_timeout_ms = 0.0;
  /// Stale response frames (ids solve() stopped waiting for) discarded per
  /// read before the stream is declared poisoned and the connection closed
  /// with a protocol error. 0 = unbounded discard (historical behaviour).
  int max_stale_frames = 256;
  /// Retry/backoff policy for solve().
  RetryPolicy retry;
  /// Optional deterministic fault injection (tests/chaos benches only);
  /// null = production, zero cost.
  std::shared_ptr<FaultPlan> fault_plan;
};

/// What a remote solve returns: the certified answer plus the server-side
/// provenance/timing the wire carries (see WireResponse).
struct RemoteResponse {
  double period = 0.0;
  StrategyId winner = StrategyId::Mcph;
  bool from_cache = false;
  bool coalesced = false;
  /// True when the server admitted this request under brownout: the answer
  /// came from the cheap heuristic allowlist only (no exact/CG arm ran).
  bool brownout = false;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  double queue_ms = 0.0;
  int certified = 0;
  int failed = 0;
  int skipped = 0;
  int pruned = 0;
  double proven_lower_bound = 0.0;
  std::vector<WireOutcome> outcomes;

  double throughput() const { return period > 0.0 ? 1.0 / period : 0.0; }
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon. Fails with kUnavailable when nobody listens.
  static Result<Client> connect(const std::string& host, std::uint16_t port,
                                ClientOptions options = {});

  bool connected() const { return fd_ >= 0; }

  /// Solve one instance remotely. The request's cancellation token is
  /// ignored (remote cancellation is cancel_last()); everything else —
  /// deadline (incl. kNoDeadline), priority, strategy allowlist, limits,
  /// pruning override, known_lower_bound — travels on the wire.
  ///
  /// Resilience: retried per ClientOptions::retry (capped exponential
  /// backoff, deterministic jitter) when the connection died mid-round-trip
  /// or the server answered kUnavailable/kShuttingDown. On exhaustion the
  /// *last* error is returned. Timeouts (kDeadlineExceeded), protocol
  /// errors (kInternal), kOverloaded sheds and all other server-reported
  /// errors are never retried (see RetryPolicy).
  Result<RemoteResponse> solve(const SolveRequest& request);

  /// Fire-and-forget cancel for the most recent solve's request id — only
  /// useful from another thread's Client or after a timeout, since solve()
  /// itself blocks.
  Status cancel(std::uint64_t request_id);

  /// Fetch the daemon's counter snapshot.
  Result<ServerWireStats> stats();

  /// Fetch the daemon's cumulative profiling snapshot (aggregate trace
  /// counters + cache shard heat).
  Result<ServerWireTrace> trace();

  /// The id solve() will stamp on its next request.
  std::uint64_t next_request_id() const { return next_request_id_; }

  /// Round trips actually attempted by solve() over this client's lifetime
  /// (first tries + retries). attempts / solves = retry amplification.
  std::uint64_t total_attempts() const { return attempts_; }
  /// Stale response frames discarded by read_matching. Nonzero means a
  /// response arrived for an id nobody was waiting for any more — the
  /// double-answer signal chaos tests assert is zero.
  std::uint64_t stale_frames_discarded() const { return stale_discarded_; }

  void close();

 private:
  Status send_all(const std::vector<std::uint8_t>& bytes);
  /// Read frames until one with \p request_id arrives (or timeout_ms < 0 =
  /// forever). Stale responses for earlier, timed-out ids are discarded,
  /// at most ClientOptions::max_stale_frames per call.
  Result<Frame> read_matching(std::uint64_t request_id, double timeout_ms);
  /// Dial the remembered endpoint again after a lost connection (solve()'s
  /// retry path). Any half-read input buffer is dropped with the old
  /// socket.
  Status reconnect();
  /// Poll the optional fault plan (null = no-op); applies kDelay inline.
  FaultDecision poll_fault(FaultPoint point);

  int fd_ = -1;
  ClientOptions options_;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> in_;
  std::string host_;  ///< remembered endpoint for reconnect()
  std::uint16_t port_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t stale_discarded_ = 0;
};

}  // namespace pmcast::net
