#pragma once
/// \file client.hpp
/// Thin blocking client for the pmcast daemon (src/net/server.hpp). One
/// Client owns one TCP connection and issues one request at a time —
/// the cheap-remote-round-trip half of the resident-daemon split: all hot
/// state (worker pool, warm LP bases, result cache) lives in the server
/// process, so a client round-trip for a cached instance costs a network
/// hop instead of a portfolio solve.
///
/// Concurrency model: a Client is not thread-safe and pipelines nothing;
/// open one Client per concurrent caller (connections are cheap, the
/// daemon multiplexes thousands). solve() blocks until the response or
/// error frame for its request id arrives.
///
/// Deadlines travel as relative milliseconds and are re-anchored by the
/// server on arrival (clock skew between hosts never taints a deadline);
/// SolveRequest::kNoDeadline is preserved end-to-end as a protocol flag,
/// never as a sentinel float on the wire. The client additionally bounds
/// its own blocking time: deadline + ClientOptions::response_slack_ms for
/// deadline'd requests, ClientOptions::response_timeout_ms otherwise.

#include <cstdint>
#include <string>

#include "net/protocol.hpp"
#include "pmcast/request.hpp"
#include "pmcast/status.hpp"

namespace pmcast::net {

struct ClientOptions {
  /// Tenant id stamped on every frame (admission control key).
  std::uint32_t tenant = 0;
  /// Wall-clock cap on waiting for a response when the request carries no
  /// deadline; 0 = wait forever.
  double response_timeout_ms = 0.0;
  /// Extra wait beyond a request's own deadline before giving up on the
  /// socket (covers transfer + scheduling noise).
  double response_slack_ms = 2'000.0;
};

/// What a remote solve returns: the certified answer plus the server-side
/// provenance/timing the wire carries (see WireResponse).
struct RemoteResponse {
  double period = 0.0;
  StrategyId winner = StrategyId::Mcph;
  bool from_cache = false;
  bool coalesced = false;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  double queue_ms = 0.0;
  int certified = 0;
  int failed = 0;
  int skipped = 0;
  int pruned = 0;
  double proven_lower_bound = 0.0;
  std::vector<WireOutcome> outcomes;

  double throughput() const { return period > 0.0 ? 1.0 / period : 0.0; }
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon. Fails with kUnavailable when nobody listens.
  static Result<Client> connect(const std::string& host, std::uint16_t port,
                                ClientOptions options = {});

  bool connected() const { return fd_ >= 0; }

  /// Solve one instance remotely. The request's cancellation token is
  /// ignored (remote cancellation is cancel_last()); everything else —
  /// deadline (incl. kNoDeadline), priority, strategy allowlist, limits,
  /// pruning override, known_lower_bound — travels on the wire.
  ///
  /// Resilience: when the round-trip fails because the *connection* died
  /// (kUnavailable — server restart, idle reset, ECONNRESET/EPIPE mapped
  /// by send/recv), the client dials the remembered endpoint again and
  /// resends the identical frame exactly once. Solves are idempotent on
  /// the server (same instance key, cache-backed), so a retry can at
  /// worst recompute. Timeouts (kDeadlineExceeded), protocol errors
  /// (kInternal) and server-reported errors are never retried.
  Result<RemoteResponse> solve(const SolveRequest& request);

  /// Fire-and-forget cancel for the most recent solve's request id — only
  /// useful from another thread's Client or after a timeout, since solve()
  /// itself blocks.
  Status cancel(std::uint64_t request_id);

  /// Fetch the daemon's counter snapshot.
  Result<ServerWireStats> stats();

  /// Fetch the daemon's cumulative profiling snapshot (aggregate trace
  /// counters + cache shard heat).
  Result<ServerWireTrace> trace();

  /// The id solve() will stamp on its next request.
  std::uint64_t next_request_id() const { return next_request_id_; }

  void close();

 private:
  Status send_all(const std::vector<std::uint8_t>& bytes);
  /// Read frames until one with \p request_id arrives (or timeout_ms < 0 =
  /// forever). Stale responses for earlier, timed-out ids are discarded.
  Result<Frame> read_matching(std::uint64_t request_id, double timeout_ms);
  /// Dial the remembered endpoint again after a lost connection (solve()'s
  /// retry-once path). Any half-read input buffer is dropped with the
  /// old socket.
  Status reconnect();

  int fd_ = -1;
  ClientOptions options_;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> in_;
  std::string host_;  ///< remembered endpoint for reconnect()
  std::uint16_t port_ = 0;
};

}  // namespace pmcast::net
