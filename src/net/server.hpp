#pragma once
/// \file server.hpp
/// pmcast-serve: the resident daemon that promotes the in-process
/// pmcast::Service to a network service. One long-lived process owns the
/// worker pool, the warm LP state and the shared result cache; remote
/// clients pay a cheap binary round-trip (src/net/protocol.hpp) instead of
/// linking the library and reloading hot state per process.
///
/// Architecture: a single epoll event-loop thread owns every connection
/// (non-blocking accept/read/write, one state machine per connection) and
/// dispatches admitted requests onto the embedded Service's worker pool via
/// submit_batch(); solver completions are handed back to the loop through a
/// mutex-guarded completion queue plus an eventfd wakeup. Cross-request
/// caching, duplicate coalescing, pruning and priority scheduling are all
/// inherited from the Service — the daemon adds transport, admission
/// control and lifecycle on top.
///
/// Lifecycle: start() binds and listens; run() blocks in the event loop
/// until a drain completes. request_drain() — async-signal-safe, callable
/// from a SIGTERM handler — stops accepting, answers any late solve frame
/// with kShuttingDown, and lets every in-flight request finish and flush;
/// after ServerOptions::drain_timeout_ms the remaining in-flight requests
/// are cooperatively cancelled, which still delivers each one an explicit
/// error frame. run() returns only when nothing is in flight and every
/// response byte is written (or its connection is gone).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/admission.hpp"
#include "net/faultpoint.hpp"
#include "pmcast/service.hpp"
#include "pmcast/status.hpp"
#include "pmcast/strategy.hpp"

namespace pmcast::net {

/// Brownout degradation policy: when the deadline-feasibility check would
/// shed a request, admit it anyway restricted to cheap heuristic arms — the
/// service degrades answer quality before availability. Responses produced
/// this way carry an explicit brownout provenance bit on the wire.
struct BrownoutOptions {
  bool enabled = false;
  /// Allowlist used for browned-out requests. Empty = the default cheap
  /// set {Mcph, PrunedDijkstra, Kmb}: pure tree heuristics, no LP and no
  /// exact enumeration.
  std::vector<StrategyId> strategies;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound port with port()
  int backlog = 256;
  int max_connections = 4096;

  /// The embedded solver service (worker pool, cache, deadlines, pruning).
  ServiceOptions service;

  /// Admission control (see src/net/admission.hpp).
  TenantQuota default_quota;
  std::unordered_map<std::uint32_t, TenantQuota> tenant_quotas;
  int global_max_in_flight = 0;
  double shed_safety_factor = 1.0;

  /// Grace period for draining in-flight work after request_drain();
  /// afterwards the stragglers are cancelled (still answered explicitly).
  double drain_timeout_ms = 10'000.0;

  /// Close a connection with no traffic at all for this long (0 = never).
  /// Protects the fd table from abandoned peers.
  double idle_timeout_ms = 0.0;
  /// Close a connection that has held a *partial* frame for this long
  /// (0 = never). This is the slow-loris defense: a peer trickling header
  /// bytes cannot pin a connection past this bound.
  double read_timeout_ms = 0.0;
  /// Close a connection whose queued-but-unsent output exceeds this many
  /// bytes (0 = unbounded). Bounds memory held hostage by a peer that
  /// stops reading its responses.
  std::size_t max_output_buffer_bytes = 0;

  /// Optional deterministic fault-injection schedule (tests and chaos
  /// benches only). Null — the default — is the production configuration:
  /// every instrumented site reduces to one branch on a null pointer.
  std::shared_ptr<FaultPlan> fault_plan;

  /// Brownout degradation (see BrownoutOptions).
  BrownoutOptions brownout;
};

/// Counter snapshot (also served remotely as a kStatsResponse).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t brownout_admitted = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t shed_qps = 0;
  std::uint64_t shed_in_flight = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t closed_idle_timeout = 0;
  std::uint64_t closed_read_timeout = 0;
  std::uint64_t closed_backpressure = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t in_flight = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + create the event loop plumbing. Fails with
  /// kUnavailable if the address cannot be bound.
  Status start();

  /// The bound port (valid after start(); useful with port = 0).
  std::uint16_t port() const;

  /// Run the event loop. Blocks until a drain completes. Call from one
  /// thread only, after start().
  void run();

  /// Begin a graceful drain. Async-signal-safe (an atomic store plus an
  /// eventfd write), so a SIGTERM handler may call it directly. Idempotent.
  void request_drain();

  /// True once run() has finished draining.
  bool drained() const;

  /// Counter snapshot; callable from any thread.
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pmcast::net
