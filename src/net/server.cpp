#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"

namespace pmcast::net {
namespace {

using ServerClock = std::chrono::steady_clock;

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnId = 16;
constexpr std::size_t kReadChunk = 64 * 1024;
/// Extra flush grace after a timed-out drain cancelled the stragglers: the
/// cancellation error frames still deserve a chance to reach their peers.
constexpr double kDrainFlushGraceMs = 2'000.0;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        service(options.service),
        admission(AdmissionController::Options{
            options.default_quota, options.tenant_quotas,
            options.global_max_in_flight, options.shed_safety_factor,
            /*ewma_alpha=*/0.2}),
        start_time(ServerClock::now()) {
    brownout_strategies =
        options.brownout.strategies.empty()
            ? std::vector<StrategyId>{StrategyId::Mcph,
                                      StrategyId::PrunedDijkstra,
                                      StrategyId::Kmb}
            : options.brownout.strategies;
  }

  ~Impl() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (listen_fd >= 0) ::close(listen_fd);
  }

  // ------------------------------------------------------------- plumbing --

  double now_ms() const {
    return std::chrono::duration<double, std::milli>(ServerClock::now() -
                                                     start_time)
        .count();
  }

  /// One in-flight remote request (event-loop state, for kCancel).
  struct Pending {
    SolveFuture future;
    std::uint32_t tenant = 0;
    bool brownout = false;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> in;   ///< unparsed bytes
    std::vector<std::uint8_t> out;  ///< unwritten bytes
    std::size_t out_offset = 0;
    bool epollout_armed = false;
    bool close_after_flush = false;
    double last_activity_ms = 0.0;  ///< last accept/read, for idle timeout
    /// When the oldest buffered partial frame arrived; < 0 = no partial
    /// frame. Drives the slow-loris read timeout.
    double read_started_ms = -1.0;
    std::unordered_map<std::uint64_t, Pending> pending;

    bool flushed() const { return out_offset >= out.size(); }
  };

  /// Worker -> loop handoff: encoded bytes plus the admission accounting
  /// the loop must settle even when the connection is already gone.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::uint32_t tenant = 0;
    double solve_ms = -1.0;  ///< < 0: no EWMA update (errored before solving)
    bool is_error = false;
    bool brownout = false;
    std::vector<std::uint8_t> bytes;
  };

  // --------------------------------------------------------------- fields --

  ServerOptions options;
  Service service;
  AdmissionController admission;
  ServerClock::time_point start_time;
  /// Raw view of options.fault_plan: every instrumented site branches on
  /// this pointer, so a null plan costs one predictable compare.
  FaultPlan* faults = options.fault_plan.get();
  std::vector<StrategyId> brownout_strategies;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::uint16_t bound_port = 0;
  std::uint64_t next_conn_id = kFirstConnId;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections;

  std::mutex completion_mutex;
  std::deque<Completion> completions;

  std::atomic<bool> drain_requested{false};
  std::atomic<bool> drained{false};
  bool draining = false;
  double drain_started_ms = 0.0;
  bool drain_cancelled_stragglers = false;

  // Counters. Atomics so stats() is callable from any thread while the
  // loop runs; all writes happen on the loop thread.
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_open{0};
  std::atomic<std::uint64_t> requests_admitted{0};
  std::atomic<std::uint64_t> responses_sent{0};
  std::atomic<std::uint64_t> errors_sent{0};
  std::atomic<std::uint64_t> shed_qps{0};
  std::atomic<std::uint64_t> shed_in_flight{0};
  std::atomic<std::uint64_t> shed_deadline{0};
  std::atomic<std::uint64_t> shed_shutdown{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> brownout_admitted{0};
  std::atomic<std::uint64_t> closed_idle_timeout{0};
  std::atomic<std::uint64_t> closed_read_timeout{0};
  std::atomic<std::uint64_t> closed_backpressure{0};
  std::atomic<std::uint64_t> faults_injected{0};
  std::atomic<std::uint64_t> in_flight{0};

  // ---------------------------------------------------------------- faults --

  /// Poll the fault plan at \p point (no-op without a plan). Delay actions
  /// are applied here — stalling the loop thread is exactly what a delay
  /// fault means for a single-threaded server — so call sites only need to
  /// handle actions that change control flow.
  FaultDecision poll_fault(FaultPoint point) {
    if (faults == nullptr) return {};
    FaultDecision decision = faults->poll(point);
    if (decision) {
      faults_injected.fetch_add(1, std::memory_order_relaxed);
      if (decision.action == FaultAction::kDelay && decision.delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(decision.delay_ms));
      }
    }
    return decision;
  }

  // ---------------------------------------------------------------- start --

  Status start() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) {
      return Status(StatusCode::kUnavailable,
                    std::string("socket: ") + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      return Status(StatusCode::kInvalidArgument,
                    "bad listen address '" + options.host + "'");
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return Status(StatusCode::kUnavailable,
                    "bind " + options.host + ":" +
                        std::to_string(options.port) + ": " +
                        std::strerror(errno));
    }
    if (::listen(listen_fd, options.backlog) < 0) {
      return Status(StatusCode::kUnavailable,
                    std::string("listen: ") + std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);

    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd < 0 || wake_fd < 0) {
      return Status(StatusCode::kUnavailable,
                    std::string("epoll/eventfd: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerId;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.u64 = kWakeId;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev);
    return Status::Ok();
  }

  void wake() {
    if (wake_fd >= 0) {
      const std::uint64_t v = 1;
      // Best-effort; EAGAIN means the counter is already nonzero.
      [[maybe_unused]] ssize_t n = ::write(wake_fd, &v, sizeof(v));
    }
  }

  // ----------------------------------------------------------- event loop --

  void run() {
    std::vector<epoll_event> events(128);
    while (true) {
      const int timeout_ms = draining ? 20 : 200;
      const int n =
          ::epoll_wait(epoll_fd, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
        const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
        if (id == kListenerId) {
          accept_ready();
        } else if (id == kWakeId) {
          std::uint64_t v;
          while (::read(wake_fd, &v, sizeof(v)) > 0) {
          }
        } else {
          handle_connection_event(id, mask);
        }
      }
      drain_completions();
      if (options.idle_timeout_ms > 0.0 || options.read_timeout_ms > 0.0) {
        scan_timeouts();
      }
      if (drain_requested.load(std::memory_order_acquire) && !draining) {
        begin_drain();
      }
      if (draining && drain_finished()) break;
    }
    shutdown_everything();
    drained.store(true, std::memory_order_release);
  }

  void accept_ready() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN or transient error: try next wakeup
      if (draining ||
          connections.size() >=
              static_cast<std::size_t>(options.max_connections)) {
        ::close(fd);
        continue;
      }
      if (poll_fault(FaultPoint::kAccept)) {
        // kEmfile: the fd table is "full"; kReset: the connection dies
        // before it exists. Either way the peer sees an abrupt close.
        ::close(fd);
        continue;
      }
      set_nodelay(fd);
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->last_activity_ms = now_ms();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      connections.emplace(conn->id, std::move(conn));
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
      connections_open.store(connections.size(), std::memory_order_relaxed);
    }
  }

  void handle_connection_event(std::uint64_t id, std::uint32_t mask) {
    auto it = connections.find(id);
    if (it == connections.end()) return;  // already closed this iteration
    Connection* conn = it->second.get();
    // Read before honouring HUP so a peer that sent-then-closed still gets
    // its last frames processed (read_ready handles the EOF itself).
    if (mask & EPOLLIN) {
      if (!read_ready(conn)) return;  // connection closed
    }
    if (mask & (EPOLLHUP | EPOLLERR)) {
      close_connection(conn);
      return;
    }
    if (mask & EPOLLOUT) flush(conn);
  }

  /// Returns false when the connection was closed.
  bool read_ready(Connection* conn) {
    std::size_t chunk = kReadChunk;
    bool single_read = false;
    if (FaultDecision fault = poll_fault(FaultPoint::kServerRead)) {
      if (fault.action == FaultAction::kReset) {
        close_connection(conn);
        return false;
      }
      if (fault.action == FaultAction::kShortRead) {
        // Deliver at most `magnitude` bytes this readiness event; the rest
        // stays in the kernel buffer for the next (level-triggered) wakeup.
        chunk = static_cast<std::size_t>(std::max<std::uint64_t>(
            fault.magnitude, 1));
        single_read = true;
      }
    }
    while (true) {
      const std::size_t old_size = conn->in.size();
      conn->in.resize(old_size + chunk);
      const ssize_t n = ::read(conn->fd, conn->in.data() + old_size, chunk);
      if (n > 0) {
        conn->in.resize(old_size + static_cast<std::size_t>(n));
        conn->last_activity_ms = now_ms();
        if (single_read || static_cast<std::size_t>(n) < chunk) break;
        continue;
      }
      conn->in.resize(old_size);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error. Anything still buffered is a frame the peer
      // abandoned mid-send — not an error, just a dead connection.
      close_connection(conn);
      return false;
    }
    return parse_frames(conn);
  }

  /// Returns false when the connection was closed.
  bool parse_frames(Connection* conn) {
    // Sends inside handle_frame can close the connection (peer gone mid
    // write), freeing *conn — track liveness by id, never touch conn after
    // a call that may have closed it.
    const std::uint64_t cid = conn->id;
    std::size_t consumed_total = 0;
    while (true) {
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const FrameStatus status = extract_frame(
          std::span<const std::uint8_t>(conn->in).subspan(consumed_total),
          &frame, &consumed, &error);
      if (status == FrameStatus::kNeedMore) break;
      if (status == FrameStatus::kMalformed) {
        // A corrupted length prefix cannot be resynchronised: answer once,
        // flush, close.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conn->in.clear();
        conn->close_after_flush = true;  // flush() closes once drained
        send_error(conn, 0, 0, WireError::kProtocol, error);
        return connections.contains(cid);
      }
      consumed_total += consumed;
      handle_frame(conn, frame);
      if (!connections.contains(cid)) return false;
    }
    if (consumed_total > 0) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() +
                         static_cast<std::ptrdiff_t>(consumed_total));
    }
    // Read-timeout bookkeeping: a non-empty buffer here is a partial frame.
    // Start the clock when one appears; stop it when the buffer drains.
    if (conn->in.empty()) {
      conn->read_started_ms = -1.0;
    } else if (conn->read_started_ms < 0.0) {
      conn->read_started_ms = now_ms();
    }
    return true;
  }

  void handle_frame(Connection* conn, const Frame& frame) {
    switch (frame.header.type) {
      case MessageType::kSolveRequest:
        handle_solve(conn, frame);
        return;
      case MessageType::kCancel: {
        auto it = conn->pending.find(frame.header.request_id);
        if (it != conn->pending.end()) it->second.future.cancel();
        return;  // the cancelled solve still answers through its completion
      }
      case MessageType::kStatsRequest:
        send_bytes(conn, encode_stats_response(wire_stats(),
                                               frame.header.request_id));
        return;
      case MessageType::kTraceRequest:
        send_bytes(conn, encode_trace_response(wire_trace(),
                                               frame.header.request_id));
        return;
      case MessageType::kSolveResponse:
      case MessageType::kError:
      case MessageType::kStatsResponse:
      case MessageType::kTraceResponse:
        // Server-to-client message types arriving at the server.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, frame.header.request_id, frame.header.tenant,
                   WireError::kProtocol,
                   std::string("unexpected client-bound message type ") +
                       message_type_name(frame.header.type));
        return;
    }
  }

  void handle_solve(Connection* conn, const Frame& frame) {
    const std::uint64_t request_id = frame.header.request_id;
    const std::uint32_t tenant = frame.header.tenant;
    if (draining) {
      shed_shutdown.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, tenant, WireError::kShuttingDown,
                 "daemon is draining");
      return;
    }
    if (conn->pending.contains(request_id)) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, tenant, WireError::kProtocol,
                 "request id already in flight on this connection");
      return;
    }
    Result<WireRequest> decoded = decode_solve_request(frame);
    if (!decoded.ok()) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, tenant, WireError::kProtocol,
                 decoded.status().message());
      return;
    }

    // Fault point BEFORE admission: an injected failure here must not leak
    // admission accounting (nothing has been charged yet).
    if (FaultDecision fault = poll_fault(FaultPoint::kDispatch)) {
      if (fault.action == FaultAction::kReset) {
        close_connection(conn);
        return;
      }
      // Other actions at dispatch reduce to the delay poll_fault applied.
    }

    // Admission: the deadline the shed policy sees is the same one the
    // Service will enforce (wire value, or the server default; negative =
    // none). No-deadline requests skip the deadline shed but not the caps.
    double admission_deadline = -1.0;
    if (!decoded->no_deadline) {
      if (decoded->deadline_ms > 0.0) {
        admission_deadline = decoded->deadline_ms;
      } else if (options.service.default_deadline_ms > 0.0) {
        admission_deadline = options.service.default_deadline_ms;
      }
    }
    const AdmissionDecision decision =
        admission.admit(tenant, now_ms(), admission_deadline,
                        service.thread_count(), options.brownout.enabled);
    switch (decision) {
      case AdmissionDecision::kAdmit:
      case AdmissionDecision::kAdmitBrownout:
        break;
      case AdmissionDecision::kShedQps:
        shed_qps.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, request_id, tenant, WireError::kOverloaded,
                   "tenant qps quota exhausted");
        return;
      case AdmissionDecision::kShedInFlight:
        shed_in_flight.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, request_id, tenant, WireError::kOverloaded,
                   "in-flight cap reached");
        return;
      case AdmissionDecision::kShedDeadline: {
        shed_deadline.fetch_add(1, std::memory_order_relaxed);
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "estimated queue delay %.1f ms exceeds deadline %.1f ms",
                      admission.estimated_queue_delay_ms(
                          service.thread_count()),
                      admission_deadline);
        send_error(conn, request_id, tenant, WireError::kOverloaded, buf);
        return;
      }
    }

    const bool brownout = decision == AdmissionDecision::kAdmitBrownout;
    requests_admitted.fetch_add(1, std::memory_order_relaxed);
    if (brownout) {
      brownout_admitted.fetch_add(1, std::memory_order_relaxed);
    }
    in_flight.store(
        static_cast<std::uint64_t>(admission.global_in_flight()),
        std::memory_order_relaxed);

    SolveRequest request = decoded->to_solve_request();
    request.cancel = CancelToken();
    if (brownout) {
      // Degraded admission: override the strategy allowlist with the cheap
      // arms. The client asked for the full portfolio and gets an honest
      // brownout bit on the response instead.
      request.strategies = brownout_strategies;
    }
    const std::uint64_t conn_id = conn->id;
    std::vector<SolveRequest> one;
    one.push_back(std::move(request));
    SolveBatch batch = service.submit_batch(
        std::move(one),
        [this, conn_id, request_id, tenant, brownout](
            std::size_t, const Result<SolveResponse>& result) {
          Completion completion;
          completion.conn_id = conn_id;
          completion.request_id = request_id;
          completion.tenant = tenant;
          completion.brownout = brownout;
          if (result.ok()) {
            completion.solve_ms = result->timing.solve_ms;
            completion.bytes = encode_solve_response(
                make_wire_response(request_id, *result,
                                   result->timing.total_ms -
                                       result->timing.solve_ms,
                                   brownout),
                tenant);
          } else {
            completion.is_error = true;
            completion.bytes = encode_error(
                request_id, tenant,
                wire_error_from_status(result.status().code()),
                result.status().message());
          }
          {
            std::lock_guard<std::mutex> lock(completion_mutex);
            completions.push_back(std::move(completion));
          }
          wake();
        });
    // Cache hits complete inline above; the pending entry is still recorded
    // and will be settled by drain_completions() later this iteration.
    conn->pending.emplace(request_id,
                          Pending{batch.future(0), tenant, brownout});
  }

  void drain_completions() {
    std::deque<Completion> ready;
    {
      std::lock_guard<std::mutex> lock(completion_mutex);
      ready.swap(completions);
    }
    for (Completion& completion : ready) {
      admission.complete(completion.tenant, completion.solve_ms,
                         completion.brownout);
      in_flight.store(
          static_cast<std::uint64_t>(admission.global_in_flight()),
          std::memory_order_relaxed);
      auto it = connections.find(completion.conn_id);
      if (it == connections.end()) continue;  // peer left; accounting only
      Connection* conn = it->second.get();
      conn->pending.erase(completion.request_id);
      if (faults != nullptr) {
        FaultDecision fault = apply_frame_fault(
            faults, FaultPoint::kResponseEnqueue, &completion.bytes);
        if (fault) {
          faults_injected.fetch_add(1, std::memory_order_relaxed);
          if (fault.action == FaultAction::kDelay && fault.delay_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(fault.delay_ms));
          }
          if (fault.action == FaultAction::kReset) {
            close_connection(conn);
            continue;  // admission already settled above
          }
          if (fault.action == FaultAction::kTruncate) {
            // The peer gets a cut-off frame and then a close — exactly what
            // a server dying mid-send looks like.
            conn->close_after_flush = true;
          }
        }
      }
      if (completion.is_error) {
        errors_sent.fetch_add(1, std::memory_order_relaxed);
      } else {
        responses_sent.fetch_add(1, std::memory_order_relaxed);
      }
      send_bytes(conn, std::move(completion.bytes));
    }
  }

  // ----------------------------------------------------------------- send --

  void send_error(Connection* conn, std::uint64_t request_id,
                  std::uint32_t tenant, WireError code,
                  const std::string& message) {
    errors_sent.fetch_add(1, std::memory_order_relaxed);
    send_bytes(conn, encode_error(request_id, tenant, code, message));
  }

  void send_bytes(Connection* conn, std::vector<std::uint8_t> bytes) {
    if (conn->flushed()) {
      conn->out.clear();
      conn->out_offset = 0;
    }
    conn->out.insert(conn->out.end(), bytes.begin(), bytes.end());
    // Backpressure cap: a peer that stops reading its responses cannot hold
    // unbounded memory hostage. Closing loses the queued responses, but the
    // peer was not consuming them anyway.
    if (options.max_output_buffer_bytes > 0 &&
        conn->out.size() - conn->out_offset >
            options.max_output_buffer_bytes) {
      closed_backpressure.fetch_add(1, std::memory_order_relaxed);
      close_connection(conn);
      return;
    }
    flush(conn);
  }

  void flush(Connection* conn) {
    while (!conn->flushed()) {
      std::size_t want = conn->out.size() - conn->out_offset;
      if (FaultDecision fault = poll_fault(FaultPoint::kServerWrite)) {
        if (fault.action == FaultAction::kReset) {
          close_connection(conn);
          return;
        }
        if (fault.action == FaultAction::kShortWrite) {
          want = std::min<std::size_t>(
              want, static_cast<std::size_t>(
                        std::max<std::uint64_t>(fault.magnitude, 1)));
        }
      }
      const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                               want, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        arm_epollout(conn, true);
        return;
      }
      close_connection(conn);  // peer gone mid-write
      return;
    }
    arm_epollout(conn, false);
    if (conn->close_after_flush) close_connection(conn);
  }

  void arm_epollout(Connection* conn, bool on) {
    if (conn->epollout_armed == on) return;
    conn->epollout_armed = on;
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  // ------------------------------------------------------------- timeouts --

  /// Per-tick sweep (epoll_wait bounds the tick at 200 ms, so sub-tick
  /// timeouts resolve at that granularity). Read timeout outranks idle: a
  /// connection trickling header bytes is "active" but still hostile.
  void scan_timeouts() {
    const double now = now_ms();
    std::vector<Connection*> doomed_read;
    std::vector<Connection*> doomed_idle;
    for (auto& [id, conn] : connections) {
      if (options.read_timeout_ms > 0.0 && conn->read_started_ms >= 0.0 &&
          now - conn->read_started_ms > options.read_timeout_ms) {
        doomed_read.push_back(conn.get());
      } else if (options.idle_timeout_ms > 0.0 && conn->pending.empty() &&
                 conn->flushed() && conn->in.empty() &&
                 now - conn->last_activity_ms > options.idle_timeout_ms) {
        // Idle only counts when nothing is owed in either direction.
        doomed_idle.push_back(conn.get());
      }
    }
    for (Connection* conn : doomed_read) {
      closed_read_timeout.fetch_add(1, std::memory_order_relaxed);
      close_connection(conn);
    }
    for (Connection* conn : doomed_idle) {
      closed_idle_timeout.fetch_add(1, std::memory_order_relaxed);
      close_connection(conn);
    }
  }

  void close_connection(Connection* conn) {
    // In-flight work for a vanished peer is wasted: cancel it. The
    // completions still arrive and settle the admission accounting.
    for (auto& [id, pending] : conn->pending) pending.future.cancel();
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    connections.erase(conn->id);
    connections_open.store(connections.size(), std::memory_order_relaxed);
  }

  // ---------------------------------------------------------------- drain --

  void begin_drain() {
    draining = true;
    drain_started_ms = now_ms();
    if (listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
  }

  bool drain_finished() {
    const double elapsed = now_ms() - drain_started_ms;
    if (admission.global_in_flight() > 0) {
      if (elapsed > options.drain_timeout_ms && !drain_cancelled_stragglers) {
        // Grace expired: cancel the stragglers. Each still gets an explicit
        // kCancelled error frame through the normal completion path.
        drain_cancelled_stragglers = true;
        for (auto& [id, conn] : connections) {
          for (auto& [rid, pending] : conn->pending) pending.future.cancel();
        }
      }
      if (elapsed <= options.drain_timeout_ms + kDrainFlushGraceMs) {
        return false;
      }
      // Even cancellation did not complete in time (a strategy stuck past
      // every checkpoint); abandoning ship beats hanging forever.
      return true;
    }
    // Nothing in flight: exit once every response byte is out (or give up
    // on peers that stopped reading after the flush grace).
    bool all_flushed = true;
    for (auto& [id, conn] : connections) {
      if (!conn->flushed()) {
        all_flushed = false;
        break;
      }
    }
    return all_flushed ||
           elapsed > options.drain_timeout_ms + kDrainFlushGraceMs;
  }

  void shutdown_everything() {
    std::vector<Connection*> all;
    all.reserve(connections.size());
    for (auto& [id, conn] : connections) all.push_back(conn.get());
    for (Connection* conn : all) close_connection(conn);
  }

  // ---------------------------------------------------------------- stats --

  ServerWireStats wire_stats() {
    ServerWireStats stats;
    stats.uptime_ms = now_ms();
    stats.connections_accepted =
        connections_accepted.load(std::memory_order_relaxed);
    stats.connections_open = connections_open.load(std::memory_order_relaxed);
    stats.requests_admitted =
        requests_admitted.load(std::memory_order_relaxed);
    stats.brownout_admitted =
        brownout_admitted.load(std::memory_order_relaxed);
    stats.responses_sent = responses_sent.load(std::memory_order_relaxed);
    stats.errors_sent = errors_sent.load(std::memory_order_relaxed);
    stats.shed_qps = shed_qps.load(std::memory_order_relaxed);
    stats.shed_in_flight = shed_in_flight.load(std::memory_order_relaxed);
    stats.shed_deadline = shed_deadline.load(std::memory_order_relaxed);
    stats.shed_shutdown = shed_shutdown.load(std::memory_order_relaxed);
    stats.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    stats.closed_idle_timeout =
        closed_idle_timeout.load(std::memory_order_relaxed);
    stats.closed_read_timeout =
        closed_read_timeout.load(std::memory_order_relaxed);
    stats.closed_backpressure =
        closed_backpressure.load(std::memory_order_relaxed);
    stats.faults_injected = faults_injected.load(std::memory_order_relaxed);
    stats.in_flight = in_flight.load(std::memory_order_relaxed);
    stats.worker_threads = static_cast<std::uint32_t>(service.thread_count());
    CacheMetrics cache = service.cache_metrics();
    stats.cache_shards = static_cast<std::uint32_t>(cache.shards);
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_entries = cache.entries;
    stats.ewma_solve_ms = admission.ewma_solve_ms();
    return stats;
  }

  /// The daemon's cumulative profiling view: the Service's aggregate trace
  /// plus the cache's per-shard heat map.
  ServerWireTrace wire_trace() {
    ServerWireTrace out;
    const SolveTrace trace = service.aggregate_trace();
    out.detail = static_cast<std::uint8_t>(trace.detail);
    auto predicate = [](const CutPredicateTrace& p) {
      return WirePredicateTrace{p.evaluated, p.hits, p.closest_miss};
    };
    out.sub_scatter = predicate(trace.sub_scatter);
    out.early_win = predicate(trace.early_win);
    out.probe_poll = predicate(trace.probe_poll);
    out.reconstruct_skip = predicate(trace.reconstruct_skip);
    out.checkpoint_hist = trace.checkpoint_hist;
    out.checkpoint_polls = trace.checkpoint_polls;
    out.checkpoint_total_us = trace.checkpoint_total_us;
    out.checkpoint_max_us = trace.checkpoint_max_us;
    CacheMetrics cache = service.cache_metrics();
    out.shard_heat.reserve(cache.shard_heat.size());
    for (const CacheMetrics::ShardHeat& s : cache.shard_heat) {
      out.shard_heat.push_back(
          WireShardHeat{s.hits, s.misses, s.evictions, s.entries});
    }
    return out;
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() = default;

Status Server::start() { return impl_->start(); }

std::uint16_t Server::port() const { return impl_->bound_port; }

void Server::run() { impl_->run(); }

void Server::request_drain() {
  impl_->drain_requested.store(true, std::memory_order_release);
  impl_->wake();
}

bool Server::drained() const {
  return impl_->drained.load(std::memory_order_acquire);
}

ServerStats Server::stats() const {
  const Impl& impl = *impl_;
  ServerStats stats;
  stats.connections_accepted =
      impl.connections_accepted.load(std::memory_order_relaxed);
  stats.connections_open =
      impl.connections_open.load(std::memory_order_relaxed);
  stats.requests_admitted =
      impl.requests_admitted.load(std::memory_order_relaxed);
  stats.brownout_admitted =
      impl.brownout_admitted.load(std::memory_order_relaxed);
  stats.responses_sent = impl.responses_sent.load(std::memory_order_relaxed);
  stats.errors_sent = impl.errors_sent.load(std::memory_order_relaxed);
  stats.shed_qps = impl.shed_qps.load(std::memory_order_relaxed);
  stats.shed_in_flight = impl.shed_in_flight.load(std::memory_order_relaxed);
  stats.shed_deadline = impl.shed_deadline.load(std::memory_order_relaxed);
  stats.shed_shutdown = impl.shed_shutdown.load(std::memory_order_relaxed);
  stats.protocol_errors =
      impl.protocol_errors.load(std::memory_order_relaxed);
  stats.closed_idle_timeout =
      impl.closed_idle_timeout.load(std::memory_order_relaxed);
  stats.closed_read_timeout =
      impl.closed_read_timeout.load(std::memory_order_relaxed);
  stats.closed_backpressure =
      impl.closed_backpressure.load(std::memory_order_relaxed);
  stats.faults_injected =
      impl.faults_injected.load(std::memory_order_relaxed);
  stats.in_flight = impl.in_flight.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pmcast::net
