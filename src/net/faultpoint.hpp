#pragma once
/// \file faultpoint.hpp
/// Deterministic fault injection for the pmcast serving stack. Named fault
/// points (accept, read, write, dispatch, response-enqueue on the server;
/// connect, send, recv on the client) are threaded through src/net/ and
/// consult an optional FaultPlan before every I/O step. A null plan is the
/// production configuration — every site guards with a single branch on a
/// null pointer, so the layer is zero-cost when disabled.
///
/// Determinism contract: the decision a plan returns for the k-th poll of a
/// fault point is a pure function of (seed, rule set, k). Nth-hit and
/// one-shot triggers count hits; probability triggers draw from a per-rule
/// PRNG seeded from (plan seed, rule index) that advances exactly once per
/// matching poll. Two plans built from the same seed and rules therefore
/// produce bit-identical fault schedules — chaos runs are reproducible and
/// a failing seed is a complete repro.
///
/// The plan serialises its own state with a mutex so one plan may be shared
/// across threads (server loop + many clients); note that under sharing the
/// per-point *sequence* stays deterministic but its interleaving across
/// threads follows the callers. For strict end-to-end reproducibility give
/// each thread its own plan (seed + thread index).

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace pmcast::net {

/// Where a fault can fire. Server points run on the event-loop thread;
/// client points run on the calling client's thread.
enum class FaultPoint : std::uint8_t {
  kAccept = 0,        ///< server: a connection is about to be accepted
  kServerRead = 1,    ///< server: about to read() from a connection
  kServerWrite = 2,   ///< server: about to send() queued output
  kDispatch = 3,      ///< server: decoded solve about to enter admission
  kResponseEnqueue = 4,  ///< server: completion bytes about to be queued
  kConnect = 5,       ///< client: about to dial the daemon
  kClientSend = 6,    ///< client: about to send a request frame
  kClientRecv = 7,    ///< client: about to recv() response bytes
};

inline constexpr std::size_t kFaultPointCount = 8;

inline const char* fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kAccept: return "accept";
    case FaultPoint::kServerRead: return "server_read";
    case FaultPoint::kServerWrite: return "server_write";
    case FaultPoint::kDispatch: return "dispatch";
    case FaultPoint::kResponseEnqueue: return "response_enqueue";
    case FaultPoint::kConnect: return "connect";
    case FaultPoint::kClientSend: return "client_send";
    case FaultPoint::kClientRecv: return "client_recv";
  }
  return "?";
}

/// What happens when a rule fires. Not every action is meaningful at every
/// point; the site applies the closest sensible interpretation (a kReset at
/// kAccept closes the just-accepted socket, at kServerRead it closes the
/// connection as if the peer sent RST, ...).
enum class FaultAction : std::uint8_t {
  kNone = 0,
  kReset,       ///< ECONNRESET semantics: the connection dies here
  kShortRead,   ///< deliver at most `magnitude` bytes this read
  kShortWrite,  ///< write at most `magnitude` bytes this call
  kTruncate,    ///< drop the last `magnitude` bytes of the outgoing frame
  kDelay,       ///< sleep `delay_ms` before proceeding
  kEmfile,      ///< accept fails as if the fd table were full
};

inline const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::kNone: return "none";
    case FaultAction::kReset: return "reset";
    case FaultAction::kShortRead: return "short_read";
    case FaultAction::kShortWrite: return "short_write";
    case FaultAction::kTruncate: return "truncate";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kEmfile: return "emfile";
  }
  return "?";
}

/// When a rule fires.
enum class FaultTrigger : std::uint8_t {
  kNth,          ///< every `nth` poll of the point (1 = every poll)
  kProbability,  ///< each poll independently with `probability`
  kOneShot,      ///< exactly once, on the `nth`-th poll
};

struct FaultRule {
  FaultPoint point = FaultPoint::kServerRead;
  FaultAction action = FaultAction::kReset;
  FaultTrigger trigger = FaultTrigger::kProbability;
  std::uint64_t nth = 1;        ///< kNth period / kOneShot target (1-based)
  double probability = 0.0;     ///< kProbability per-poll chance
  std::uint64_t magnitude = 1;  ///< bytes for short read/write/truncate
  double delay_ms = 0.0;        ///< kDelay sleep
};

/// The decision one poll returns. Falsy when nothing fires.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::uint64_t magnitude = 0;
  double delay_ms = 0.0;

  explicit operator bool() const { return action != FaultAction::kNone; }
};

/// A seeded schedule of injected faults. Build once, hand to ServerOptions
/// and/or ClientOptions via shared_ptr, and every instrumented I/O site
/// polls it. poll() is cheap (one mutex, one counter bump, rule scan) but
/// the real fast path is the *absence* of a plan: instrumented sites test
/// a raw pointer and skip everything when it is null.
class FaultPlan {
 public:
  FaultPlan(std::uint64_t seed, std::vector<FaultRule> rules);

  /// Count one arrival at \p point and return the first firing rule's
  /// decision (rules are consulted in construction order).
  FaultDecision poll(FaultPoint point);

  /// Total polls observed at \p point.
  std::uint64_t hits(FaultPoint point) const;
  /// Total decisions fired at \p point (any action).
  std::uint64_t fired(FaultPoint point) const;
  /// Total decisions fired across all points.
  std::uint64_t total_fired() const;

  std::uint64_t seed() const { return seed_; }

 private:
  /// splitmix64 over (seed, rule index): every rule gets an independent,
  /// reproducible PRNG stream.
  struct RuleState {
    FaultRule rule;
    std::uint64_t prng = 0;
    std::uint64_t fired = 0;
  };

  double next_uniform(RuleState& state);

  std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
  std::uint64_t hits_[kFaultPointCount] = {};
  std::uint64_t fired_[kFaultPointCount] = {};
};

}  // namespace pmcast::net
