#pragma once
/// \file admission.hpp
/// Admission control for the pmcast daemon: per-tenant token-bucket QPS
/// limits, per-tenant and global in-flight caps, and deadline-aware load
/// shedding. The controller's job is to reject work *before* any solver
/// budget is spent on it — a request whose deadline cannot survive the
/// estimated queue delay is answered with an explicit Overloaded wire
/// error in microseconds instead of burning a worker slot to produce a
/// DeadlineExceeded seconds later.
///
/// All methods take an explicit `now_ms` timestamp (any monotone ms clock)
/// so policies are unit-testable without sleeping. The controller is not
/// thread-safe: the server calls it from the event-loop thread only.

#include <cstdint>
#include <unordered_map>

namespace pmcast::net {

/// Per-tenant limits. Zero always means "unlimited" so a default-constructed
/// quota admits everything.
struct TenantQuota {
  double qps = 0.0;         ///< sustained requests/second (0 = unlimited)
  double burst = 0.0;       ///< bucket depth; 0 = max(qps, 1)
  int max_in_flight = 0;    ///< concurrent admitted requests (0 = unlimited)
};

enum class AdmissionDecision {
  kAdmit,
  kAdmitBrownout,  ///< admitted, but only cheap heuristic arms may run
  kShedQps,        ///< tenant token bucket empty
  kShedInFlight,   ///< tenant (or global) in-flight cap reached
  kShedDeadline,   ///< estimated queue delay exceeds the request deadline
};

inline const char* admission_decision_name(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmit: return "admit";
    case AdmissionDecision::kAdmitBrownout: return "admit_brownout";
    case AdmissionDecision::kShedQps: return "shed_qps";
    case AdmissionDecision::kShedInFlight: return "shed_in_flight";
    case AdmissionDecision::kShedDeadline: return "shed_deadline";
  }
  return "?";
}

class AdmissionController {
 public:
  struct Options {
    TenantQuota default_quota;  ///< applied to tenants without an override
    std::unordered_map<std::uint32_t, TenantQuota> tenant_quotas;
    int global_max_in_flight = 0;  ///< across all tenants (0 = unlimited)
    /// Safety margin on the queue-delay shed: shed when
    /// estimated_delay * factor > deadline. > 1 sheds earlier.
    double shed_safety_factor = 1.0;
    /// EWMA smoothing for the per-request solve-time estimate.
    double ewma_alpha = 0.2;
  };

  explicit AdmissionController(Options options);

  /// Decide one request. \p deadline_ms is the request's *relative* deadline
  /// budget in ms, or a negative value for "no deadline" (no-deadline
  /// requests are never deadline-shed but still count against — and are
  /// rejected past — every in-flight cap). \p worker_threads scales the
  /// queue-delay estimate. On kAdmit/kAdmitBrownout the tenant's in-flight
  /// count and token bucket are charged; every other decision leaves all
  /// state untouched.
  ///
  /// With \p brownout_enabled, a request the deadline-feasibility check
  /// would shed gets a second chance against the cheap-arm solve-time
  /// estimate (heuristic strategies only, no exact/CG): if the degraded
  /// portfolio can still meet the deadline the decision is kAdmitBrownout —
  /// overload degrades answer quality before it degrades availability.
  /// Shed only when even the cheap arms cannot make it.
  AdmissionDecision admit(std::uint32_t tenant, double now_ms,
                          double deadline_ms, int worker_threads,
                          bool brownout_enabled = false);

  /// Release one admitted request and fold its observed solve time into the
  /// queue-delay estimate (pass solve_ms < 0 to skip the EWMA update, e.g.
  /// for requests that errored before solving). Brownout completions feed
  /// the cheap-arm EWMA instead of the full-portfolio one.
  void complete(std::uint32_t tenant, double solve_ms,
                bool brownout = false);

  /// Estimated delay (ms) a newly admitted request would wait before a
  /// worker picks it up: in-flight work ahead of it, spread over the
  /// workers, times the smoothed per-request solve time. Zero until the
  /// first completion is observed — admission must not shed on no data.
  double estimated_queue_delay_ms(int worker_threads) const;

  /// Same estimate under the brownout allowlist's cheap-arm EWMA. Zero
  /// until the first brownout completion — never shed on no data, so the
  /// first wave of brownout admissions always goes through.
  double estimated_brownout_delay_ms(int worker_threads) const;

  int global_in_flight() const { return global_in_flight_; }
  int tenant_in_flight(std::uint32_t tenant) const;
  double ewma_solve_ms() const { return ewma_solve_ms_; }
  double ewma_brownout_solve_ms() const { return ewma_brownout_ms_; }

 private:
  struct TenantState {
    TenantQuota quota;
    double tokens = 0.0;
    double last_refill_ms = 0.0;
    bool primed = false;  ///< bucket starts full on first sight
    int in_flight = 0;
  };

  TenantState& state_for(std::uint32_t tenant, double now_ms);

  Options options_;
  std::unordered_map<std::uint32_t, TenantState> tenants_;
  int global_in_flight_ = 0;
  double ewma_solve_ms_ = 0.0;
  bool ewma_primed_ = false;
  double ewma_brownout_ms_ = 0.0;
  bool ewma_brownout_primed_ = false;
};

}  // namespace pmcast::net
