/// \file service.cpp
/// Implementation of the pmcast v1 Service facade (pmcast/service.hpp):
/// request validation, StrategyId <-> runtime::Strategy mapping,
/// PortfolioResult -> Result<SolveResponse> translation, and the shared
/// batch state behind SolveFuture/SolveBatch. All engine mechanics
/// (caching, coalescing, fan-out, streaming) live in runtime/engine.cpp;
/// this layer only adapts types and classifies failures into Status codes.

#include "pmcast/service.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

#include "pmcast/problem.hpp"
#include "runtime/runtime.hpp"

namespace pmcast {
namespace {

// The public StrategyId mirrors the runtime enum one-to-one; the facade
// converts by value.
static_assert(
    static_cast<int>(StrategyId::Mcph) ==
            static_cast<int>(runtime::Strategy::Mcph) &&
        static_cast<int>(StrategyId::PrunedDijkstra) ==
            static_cast<int>(runtime::Strategy::PrunedDijkstra) &&
        static_cast<int>(StrategyId::Kmb) ==
            static_cast<int>(runtime::Strategy::Kmb) &&
        static_cast<int>(StrategyId::MulticastUb) ==
            static_cast<int>(runtime::Strategy::MulticastUb) &&
        static_cast<int>(StrategyId::AugmentedSources) ==
            static_cast<int>(runtime::Strategy::AugmentedSources) &&
        static_cast<int>(StrategyId::ReducedBroadcast) ==
            static_cast<int>(runtime::Strategy::ReducedBroadcast) &&
        static_cast<int>(StrategyId::AugmentedMulticast) ==
            static_cast<int>(runtime::Strategy::AugmentedMulticast) &&
        static_cast<int>(StrategyId::Exact) ==
            static_cast<int>(runtime::Strategy::Exact),
    "StrategyId must mirror runtime::Strategy");

static_assert(
    static_cast<int>(PruningPolicy::Off) ==
            static_cast<int>(runtime::PruningPolicy::Off) &&
        static_cast<int>(PruningPolicy::Deterministic) ==
            static_cast<int>(runtime::PruningPolicy::Deterministic) &&
        static_cast<int>(PruningPolicy::Aggressive) ==
            static_cast<int>(runtime::PruningPolicy::Aggressive),
    "PruningPolicy must mirror runtime::PruningPolicy");

static_assert(
    static_cast<int>(TraceDetail::Off) ==
            static_cast<int>(runtime::TraceDetail::Off) &&
        static_cast<int>(TraceDetail::Counters) ==
            static_cast<int>(runtime::TraceDetail::Counters) &&
        static_cast<int>(TraceDetail::Timeline) ==
            static_cast<int>(runtime::TraceDetail::Timeline),
    "TraceDetail must mirror runtime::TraceDetail");

static_assert(
    static_cast<int>(TraceEventKind::Launch) ==
            static_cast<int>(runtime::TraceEventKind::Launch) &&
        static_cast<int>(TraceEventKind::FirstLpCheckpoint) ==
            static_cast<int>(runtime::TraceEventKind::FirstLpCheckpoint) &&
        static_cast<int>(TraceEventKind::Certified) ==
            static_cast<int>(runtime::TraceEventKind::Certified) &&
        static_cast<int>(TraceEventKind::Pruned) ==
            static_cast<int>(runtime::TraceEventKind::Pruned) &&
        static_cast<int>(TraceEventKind::Skipped) ==
            static_cast<int>(runtime::TraceEventKind::Skipped) &&
        static_cast<int>(TraceEventKind::Failed) ==
            static_cast<int>(runtime::TraceEventKind::Failed),
    "TraceEventKind must mirror runtime::TraceEventKind");

runtime::Strategy to_runtime(StrategyId id) {
  return static_cast<runtime::Strategy>(static_cast<int>(id));
}

runtime::PruningPolicy to_runtime(PruningPolicy policy) {
  return static_cast<runtime::PruningPolicy>(static_cast<int>(policy));
}

runtime::TraceDetail to_runtime(TraceDetail detail) {
  return static_cast<runtime::TraceDetail>(static_cast<int>(detail));
}

StrategyId to_public(runtime::Strategy s) {
  return static_cast<StrategyId>(static_cast<int>(s));
}

std::vector<runtime::Strategy> to_runtime(
    const std::vector<StrategyId>& ids) {
  std::vector<runtime::Strategy> out;
  out.reserve(ids.size());
  for (StrategyId id : ids) out.push_back(to_runtime(id));
  return out;
}

/// Flatten a runtime trace summary into the public SolveTrace. Cheap for
/// the Off/Counters common cases (the histogram copy is 16 integers).
SolveTrace to_public(const runtime::TraceSummary& trace) {
  SolveTrace out;
  out.detail = static_cast<TraceDetail>(static_cast<int>(trace.detail));
  if (trace.detail == runtime::TraceDetail::Off) return out;
  auto predicate = [&](runtime::CutPredicate p) {
    CutPredicateTrace t;
    const runtime::PredicateTrace& src = trace.predicate(p);
    t.evaluated = src.evaluated;
    t.hits = src.hits;
    t.closest_miss = src.closest_miss;
    return t;
  };
  out.sub_scatter = predicate(runtime::CutPredicate::SubScatter);
  out.early_win = predicate(runtime::CutPredicate::EarlyWin);
  out.probe_poll = predicate(runtime::CutPredicate::ProbePoll);
  out.reconstruct_skip = predicate(runtime::CutPredicate::ReconstructSkip);
  out.checkpoint_hist.assign(trace.checkpoint_hist.begin(),
                             trace.checkpoint_hist.end());
  out.checkpoint_polls = trace.checkpoint_polls;
  out.checkpoint_total_us = trace.checkpoint_total_us;
  out.checkpoint_max_us = trace.checkpoint_max_us;
  out.timeline.reserve(trace.timeline.size());
  for (const runtime::TraceEvent& e : trace.timeline) {
    TraceTimelineEvent event;
    event.kind = static_cast<TraceEventKind>(static_cast<int>(e.kind));
    event.strategy = static_cast<StrategyId>(static_cast<int>(e.strategy));
    event.slot = e.slot;
    event.thread = e.thread;
    event.t_us = e.t_us;
    event.value = e.value;
    out.timeline.push_back(event);
  }
  return out;
}

OutcomeState to_public(runtime::CandidateState state,
                       runtime::SkipReason reason) {
  switch (state) {
    case runtime::CandidateState::Certified: return OutcomeState::Certified;
    case runtime::CandidateState::Failed: return OutcomeState::Failed;
    case runtime::CandidateState::Skipped:
      return runtime::is_pruned(reason) ? OutcomeState::Pruned
                                        : OutcomeState::Skipped;
  }
  return OutcomeState::Skipped;
}

using FacadeClock = std::chrono::steady_clock;

double ms_since(FacadeClock::time_point start) {
  return std::chrono::duration<double, std::milli>(FacadeClock::now() - start)
      .count();
}

/// Per-request context the classifier needs after the solve finished.
struct RequestMeta {
  double effective_deadline_ms = 0.0;
  CancelToken cancel;
};

}  // namespace

namespace detail {

struct BatchState {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::optional<Result<SolveResponse>>> slots;
  std::size_t delivered = 0;

  /// Serializes facade callbacks; never held together with `mutex`.
  std::mutex callback_mutex;
  ResultCallback on_result;

  FacadeClock::time_point start;
  std::vector<RequestMeta> meta;
  std::vector<std::size_t> engine_to_facade;
  runtime::SolveTicket ticket;  ///< set under `mutex` after engine dispatch
  bool cancel_requested = false;

  void deliver(std::size_t index, Result<SolveResponse> result) {
    std::optional<Result<SolveResponse>> callback_copy;
    {
      std::lock_guard<std::mutex> lock(mutex);
      slots[index] = std::move(result);
      if (on_result) callback_copy = slots[index];
    }
    cv.notify_all();
    if (callback_copy) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      on_result(index, *callback_copy);
    }
    ResultCallback retired;
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++delivered;
      if (delivered == slots.size()) {
        // Last delivery: drop the user callback so anything it captured
        // (including, via this batch's handle, this very state) is
        // released — otherwise a handle-capturing callback would leak the
        // batch. Safe: every deliverer bumps `delivered` only after its
        // callback phase.
        retired = std::move(on_result);
        on_result = nullptr;
      }
    }
    cv.notify_all();
  }

  bool was_cancelled(std::size_t index) {
    std::lock_guard<std::mutex> lock(mutex);
    return cancel_requested || meta[index].cancel.stop_requested();
  }
};

}  // namespace detail

using detail::BatchState;

namespace {

/// Translate a finished portfolio run into the public result: a certified
/// response, or a classified Status when nothing certified.
Result<SolveResponse> to_response(const runtime::PortfolioResult& run,
                                  const RequestMeta& meta, bool cancelled,
                                  double total_ms) {
  if (!run.ok) {
    bool budget_starved = false;
    std::string first_failure;
    for (const runtime::CandidateOutcome& c : run.candidates) {
      if (c.skip_reason == runtime::SkipReason::Budget ||
          c.skip_reason == runtime::SkipReason::DeadlineExpired ||
          c.skip_reason == runtime::SkipReason::Cancelled) {
        budget_starved = true;
      }
      if (first_failure.empty() &&
          c.state == runtime::CandidateState::Failed) {
        first_failure = std::string(runtime::strategy_name(c.strategy)) +
                        ": " + c.detail;
      }
    }
    if (cancelled) {
      return Status(StatusCode::kCancelled,
                    "request cancelled before any strategy certified");
    }
    if (budget_starved && meta.effective_deadline_ms > 0.0) {
      return Status(StatusCode::kDeadlineExceeded,
                    "deadline of " + std::to_string(meta.effective_deadline_ms) +
                        " ms expired before any strategy certified");
    }
    if (budget_starved) {
      // No deadline and not this request's own token: a coalesced group
      // runs under its leader's budget, so the leader was cancelled.
      return Status(StatusCode::kCancelled,
                    "request cancelled (via the coalesced leader's token) "
                    "before any strategy certified");
    }
    return Status(StatusCode::kInternal,
                  first_failure.empty()
                      ? "no strategy produced a certified result"
                      : "no strategy produced a certified result; first "
                        "failure — " + first_failure);
  }

  SolveResponse response;
  response.period = run.period;
  response.winner = to_public(run.winner);
  response.outcomes.reserve(run.candidates.size());
  for (const runtime::CandidateOutcome& c : run.candidates) {
    StrategyOutcome out;
    out.strategy = to_public(c.strategy);
    out.state = to_public(c.state, c.skip_reason);
    out.period = c.period;
    out.bound_period = c.bound_period;
    out.elapsed_ms = c.elapsed_ms;
    out.lp.solves = c.lp.solves;
    out.lp.warm_starts = c.lp.warm_starts;
    out.lp.eta_reuses = c.lp.eta_reuses;
    out.lp.cold_fallbacks = c.lp.cold_fallbacks;
    out.lp.iterations = c.lp.iterations;
    out.lp.columns_priced = c.lp.columns_priced;
    out.lp.master_iterations = c.lp.master_iterations;
    out.lp.pricing_ms = c.lp.pricing_ms;
    out.prune.probes_skipped = c.prune.probes_skipped;
    out.prune.cutoff_aborts = c.prune.cutoff_aborts;
    out.detail = c.detail;
    switch (out.state) {
      case OutcomeState::Certified:
        ++response.certificate.certified;
        break;
      case OutcomeState::Failed:
        ++response.certificate.failed;
        break;
      case OutcomeState::Skipped:
        ++response.certificate.skipped;
        break;
      case OutcomeState::Pruned:
        ++response.certificate.pruned;
        break;
    }
    response.outcomes.push_back(std::move(out));
    if (c.strategy == run.winner &&
        c.state == runtime::CandidateState::Certified) {
      response.certificate.winner_detail = c.detail;
    }
  }
  response.pruning.strategies_pruned = run.pruning.strategies_pruned;
  response.pruning.early_win_cancels = run.pruning.early_win_cancels;
  response.pruning.probes_skipped = run.pruning.probes_skipped;
  response.pruning.cutoff_aborts = run.pruning.cutoff_aborts;
  response.pruning.lb_probe_iterations = run.pruning.lb_probe_iterations;
  response.pruning.proven_lower_bound = run.pruning.proven_lb;
  response.trace = to_public(run.trace);
  response.provenance.from_cache = run.from_cache;
  response.provenance.coalesced = run.coalesced;
  response.timing.solve_ms = run.from_cache ? 0.0 : run.elapsed_ms;
  response.timing.total_ms = total_ms;
  return response;
}

}  // namespace

// ------------------------------------------------------------ SolveFuture --

bool SolveFuture::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->slots[index_].has_value();
}

void SolveFuture::wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->slots[index_].has_value(); });
}

bool SolveFuture::wait_for(double timeout_ms) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return state_->slots[index_].has_value(); });
}

Result<SolveResponse> SolveFuture::get() const {
  if (state_ == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "get() on a default-constructed SolveFuture");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->slots[index_].has_value(); });
  return *state_->slots[index_];
}

void SolveFuture::cancel() {
  if (state_ == nullptr) return;
  CancelToken token;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    token = state_->meta[index_].cancel;
  }
  token.request_stop();
}

// ------------------------------------------------------------- SolveBatch --

std::size_t SolveBatch::size() const {
  return state_ == nullptr ? 0 : state_->slots.size();
}

std::size_t SolveBatch::completed() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->delivered;
}

bool SolveBatch::done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->delivered == state_->slots.size();
}

void SolveBatch::wait_all() {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock,
                  [&] { return state_->delivered == state_->slots.size(); });
}

bool SolveBatch::wait_all_for(double timeout_ms) {
  if (state_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return state_->delivered == state_->slots.size(); });
}

void SolveBatch::cancel() {
  if (state_ == nullptr) return;
  runtime::SolveTicket ticket;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->cancel_requested = true;
    ticket = state_->ticket;
  }
  ticket.cancel();
}

bool SolveBatch::ready(std::size_t index) const {
  if (state_ == nullptr || index >= state_->slots.size()) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->slots[index].has_value();
}

Result<SolveResponse> SolveBatch::get(std::size_t index) const {
  if (state_ == nullptr || index >= state_->slots.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "get(" + std::to_string(index) +
                      ") out of range for this batch");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->slots[index].has_value(); });
  return *state_->slots[index];
}

SolveFuture SolveBatch::future(std::size_t index) const {
  if (state_ == nullptr || index >= state_->slots.size()) {
    return SolveFuture();
  }
  return SolveFuture(state_, index);
}

// ---------------------------------------------------------------- Service --

struct Service::Impl {
  ServiceOptions options;
  runtime::PortfolioEngine engine;

  static runtime::EngineOptions engine_options(const ServiceOptions& o) {
    runtime::EngineOptions eo;
    eo.threads = o.threads;
    eo.cache_capacity = o.cache_capacity;
    eo.portfolio.budget.deadline_ms = o.default_deadline_ms;
    eo.portfolio.budget.exact_max_nodes = o.exact_max_nodes;
    eo.portfolio.budget.exact_max_trees = o.exact_max_trees;
    eo.portfolio.budget.colgen_max_nodes = o.colgen_max_nodes;
    eo.portfolio.simulate_periods = o.simulate_periods;
    eo.portfolio.strategies = to_runtime(o.strategies);
    eo.portfolio.pruning = to_runtime(o.pruning);
    eo.portfolio.trace = to_runtime(o.trace);
    return eo;
  }

  explicit Impl(ServiceOptions o)
      : options(std::move(o)), engine(engine_options(options)) {}
};

Service::Service(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Service::~Service() = default;
Service::Service(Service&&) noexcept = default;
Service& Service::operator=(Service&&) noexcept = default;

SolveBatch Service::submit_batch(std::vector<SolveRequest> requests,
                                 ResultCallback on_result) {
  auto state = std::make_shared<BatchState>();
  const std::size_t n = requests.size();
  state->slots.resize(n);
  state->on_result = std::move(on_result);
  state->start = FacadeClock::now();
  state->meta.resize(n);

  std::vector<core::MulticastProblem> problems;
  std::vector<runtime::RequestOptions> engine_requests;
  std::vector<std::pair<std::size_t, Status>> rejected;
  problems.reserve(n);
  engine_requests.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    SolveRequest& req = requests[i];
    RequestMeta& meta = state->meta[i];
    // Positive = the request's own deadline; 0 inherits the service
    // default; negative (SolveRequest::kNoDeadline) = explicitly none.
    meta.effective_deadline_ms = req.deadline_ms > 0.0
                                     ? req.deadline_ms
                                 : req.deadline_ms < 0.0
                                     ? 0.0
                                     : impl_->options.default_deadline_ms;
    meta.cancel = req.cancel;

    Status valid = validate_problem(req.problem);
    if (valid.ok() && !req.problem.feasible()) {
      valid = Status(StatusCode::kFailedPrecondition,
                     "infeasible instance: at least one target is "
                     "unreachable from the source");
    }
    if (!valid.ok()) {
      rejected.emplace_back(i, std::move(valid));
      continue;
    }

    runtime::RequestOptions ro;
    ro.budget.deadline_ms = req.deadline_ms;
    ro.budget.exact_max_nodes = req.limits.exact_max_nodes;
    ro.budget.exact_max_trees = req.limits.exact_max_trees;
    ro.budget.colgen_max_nodes = req.limits.colgen_max_nodes;
    ro.strategies = to_runtime(req.strategies);
    ro.priority = req.priority;
    ro.cancel = req.cancel;
    if (req.pruning.has_value()) ro.pruning = to_runtime(*req.pruning);
    ro.known_lower_bound = req.known_lower_bound;
    engine_requests.push_back(std::move(ro));
    state->engine_to_facade.push_back(i);
    problems.push_back(std::move(req.problem));
  }

  // Rejections resolve first, on the submitting thread, in index order —
  // before any engine work is dispatched.
  for (auto& [index, status] : rejected) {
    state->deliver(index, std::move(status));
  }

  runtime::SolveTicket ticket = impl_->engine.submit_batch(
      problems, engine_requests,
      [state](std::size_t engine_index,
              const runtime::PortfolioResult& result) {
        std::size_t index = state->engine_to_facade[engine_index];
        bool cancelled = state->was_cancelled(index);
        state->deliver(index,
                       to_response(result, state->meta[index], cancelled,
                                   ms_since(state->start)));
      });
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->ticket = std::move(ticket);
  }
  return SolveBatch(state);
}

SolveFuture Service::submit(SolveRequest request) {
  std::vector<SolveRequest> batch;
  batch.push_back(std::move(request));
  return submit_batch(std::move(batch)).future(0);
}

Result<SolveResponse> Service::solve(const SolveRequest& request) {
  return submit(request).get();
}

std::vector<Result<SolveResponse>> Service::solve_batch(
    std::vector<SolveRequest> requests) {
  SolveBatch batch = submit_batch(std::move(requests));
  batch.wait_all();
  // The handle dies with this frame, so move the responses out instead
  // of copying per-strategy outcome vectors through get().
  std::vector<Result<SolveResponse>> results;
  results.reserve(batch.size());
  std::lock_guard<std::mutex> lock(batch.state_->mutex);
  for (auto& slot : batch.state_->slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

CacheMetrics Service::cache_metrics() const {
  runtime::CacheStats stats = impl_->engine.cache_stats();
  CacheMetrics metrics;
  metrics.hits = stats.hits;
  metrics.misses = stats.misses;
  metrics.evictions = stats.evictions;
  metrics.entries = stats.entries;
  metrics.shards = stats.shards;
  std::vector<runtime::CacheStats> shards = impl_->engine.cache_shard_stats();
  metrics.shard_heat.reserve(shards.size());
  for (const runtime::CacheStats& s : shards) {
    metrics.shard_heat.push_back(
        CacheMetrics::ShardHeat{s.hits, s.misses, s.evictions, s.entries});
  }
  return metrics;
}

SolveTrace Service::aggregate_trace() const {
  return to_public(impl_->engine.trace_summary());
}

void Service::clear_cache() { impl_->engine.clear_cache(); }

int Service::thread_count() const { return impl_->engine.thread_count(); }

}  // namespace pmcast
