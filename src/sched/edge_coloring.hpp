#pragma once
/// \file edge_coloring.hpp
/// Weighted bipartite edge colouring (the weighted König theorem).
///
/// The paper's feasibility argument (proofs of Theorems 1/3) is: the
/// communications of a period form a weighted bipartite multigraph between
/// "sender ports" and "receiver ports"; they can be orchestrated without
/// violating the one-port model within T = max port load, by decomposing the
/// weights into a polynomial number of matchings. This module implements
/// that decomposition constructively:
///   1. regularise the bipartite weighted graph (pad loads with dummy edges
///      so every port's total equals the maximum load M);
///   2. repeatedly extract a perfect matching on the support (Hopcroft–Karp)
///      and peel off the minimum matched weight.
/// Every step zeroes at least one edge, so at most |E| + 2·|V| matchings are
/// produced and the total peeled duration is exactly M.

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace pmcast::sched {

/// One communication to orchestrate: \p sender busy-sends to \p receiver for
/// \p duration time units within the period.
struct Communication {
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  double duration = 0.0;
};

/// A parallel communication step: all listed communications run
/// simultaneously for \p length time units starting at \p start.
/// No two communications in a slot share a sender or a receiver.
struct ColorSlot {
  double start = 0.0;
  double length = 0.0;
  std::vector<int> comm_indices;  ///< indices into the input communications
};

struct ColoringResult {
  bool ok = false;
  /// Total schedule length: the max port load on success, plus at most a
  /// floating-point-dust overshoot when input weights break exact port
  /// regularity (see color_communications).
  double makespan = 0.0;
  std::vector<ColorSlot> slots;
};

/// Maximum over all nodes of total send time and total receive time — the
/// paper's period bound T = max_i max(send_i, recv_i).
double max_port_load(std::span<const Communication> comms, int node_count);

/// Decompose \p comms into slots of simultaneous one-port-safe transfers.
/// On success, sum of slot lengths == max_port_load(comms) (within fp noise)
/// and every communication's slot time adds up to its duration.
ColoringResult color_communications(std::span<const Communication> comms,
                                    int node_count);

/// Check the one-port validity of a coloring against its communications
/// (used by tests and by the simulator's static verification pass).
/// \p tol scales with the magnitude of what it checks: slot positions use
/// tol * max(1, makespan); each communication's total assigned time uses
/// tol * max(1, its own duration) plus a makespan-relative dust floor, so
/// heterogeneous platforms whose rates span orders of magnitude validate
/// with magnitude-appropriate slack and a dropped small communication in
/// a large schedule still fails.
bool validate_coloring(const ColoringResult& result,
                       std::span<const Communication> comms, int node_count,
                       double tol = 1e-6);

}  // namespace pmcast::sched
