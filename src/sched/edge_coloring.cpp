#include "sched/edge_coloring.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace pmcast::sched {
namespace {

/// Relative dust tolerance: comparisons inside the decomposition use
/// kRelEps * M, where M is the max port load of the instance. A fixed
/// absolute epsilon mis-classifies on strongly heterogeneous platforms —
/// with rates around 1e-9 it swallows real communications whole, with
/// rates around 1e+9 it treats accumulated fp dust as real residual load.
constexpr double kRelEps = 1e-12;

}  // namespace

double max_port_load(std::span<const Communication> comms, int node_count) {
  std::vector<double> send(static_cast<size_t>(node_count), 0.0);
  std::vector<double> recv(static_cast<size_t>(node_count), 0.0);
  for (const Communication& c : comms) {
    send[static_cast<size_t>(c.sender)] += c.duration;
    recv[static_cast<size_t>(c.receiver)] += c.duration;
  }
  double load = 0.0;
  for (int v = 0; v < node_count; ++v) {
    load = std::max(load, send[static_cast<size_t>(v)]);
    load = std::max(load, recv[static_cast<size_t>(v)]);
  }
  return load;
}

ColoringResult color_communications(std::span<const Communication> comms,
                                    int node_count) {
  ColoringResult result;
  const double M = max_port_load(comms, node_count);
  result.makespan = M;
  if (!(M > 0.0)) {
    result.ok = true;
    return result;
  }
  // All dust thresholds below scale with the instance's own magnitude.
  const double kEps = kRelEps * M;

  // Working edge list: real communications first, then dummy padding edges
  // (payload -1) that regularise every port load to exactly M.
  struct WorkEdge {
    int sender;
    int receiver;
    double weight;
    int payload;  // index into comms, or -1 for dummy
  };
  std::vector<WorkEdge> edges;
  edges.reserve(comms.size() + 2 * static_cast<size_t>(node_count));
  std::vector<double> send(static_cast<size_t>(node_count), 0.0);
  std::vector<double> recv(static_cast<size_t>(node_count), 0.0);
  for (size_t i = 0; i < comms.size(); ++i) {
    const Communication& c = comms[i];
    if (c.duration <= kEps) continue;
    edges.push_back({c.sender, c.receiver, c.duration, static_cast<int>(i)});
    send[static_cast<size_t>(c.sender)] += c.duration;
    recv[static_cast<size_t>(c.receiver)] += c.duration;
  }

  // Regularise: greedily connect sender deficits to receiver deficits.
  // Total sender deficit may differ from total receiver deficit, so pad with
  // virtual ports (ids >= node_count) until both sides sum to the same value.
  std::vector<std::pair<int, double>> sdef, rdef;
  double total_sdef = 0.0, total_rdef = 0.0;
  for (int v = 0; v < node_count; ++v) {
    double ds = M - send[static_cast<size_t>(v)];
    double dr = M - recv[static_cast<size_t>(v)];
    if (ds > kEps) {
      sdef.push_back({v, ds});
      total_sdef += ds;
    }
    if (dr > kEps) {
      rdef.push_back({v, dr});
      total_rdef += dr;
    }
  }
  int virtual_ports = node_count;
  while (total_sdef + kEps < total_rdef) {
    double d = std::min(M, total_rdef - total_sdef);
    sdef.push_back({virtual_ports++, d});
    total_sdef += d;
  }
  while (total_rdef + kEps < total_sdef) {
    double d = std::min(M, total_sdef - total_rdef);
    rdef.push_back({virtual_ports++, d});
    total_rdef += d;
  }
  {
    size_t si = 0, ri = 0;
    while (si < sdef.size() && ri < rdef.size()) {
      double d = std::min(sdef[si].second, rdef[ri].second);
      if (d > kEps) {
        edges.push_back({sdef[si].first, rdef[ri].first, d, -1});
      }
      sdef[si].second -= d;
      rdef[ri].second -= d;
      if (sdef[si].second <= kEps) ++si;
      if (rdef[ri].second <= kEps) ++ri;
    }
  }

  // Compact port ids to the ports that carry load (every compacted port has
  // total load exactly M throughout the peeling).
  std::vector<int> sender_id(static_cast<size_t>(virtual_ports), -1);
  std::vector<int> receiver_id(static_cast<size_t>(virtual_ports), -1);
  int n_send = 0, n_recv = 0;
  for (const WorkEdge& e : edges) {
    if (sender_id[static_cast<size_t>(e.sender)] < 0) {
      sender_id[static_cast<size_t>(e.sender)] = n_send++;
    }
    if (receiver_id[static_cast<size_t>(e.receiver)] < 0) {
      receiver_id[static_cast<size_t>(e.receiver)] = n_recv++;
    }
  }

  // Peel perfect matchings, maintaining ONE maximum matching incrementally
  // across rounds instead of re-running Kuhn from scratch each time. A
  // round only zeroes the edges it peeled to dust, so re-augmenting from
  // the left ports those edges freed restores maximality (Kuhn's lemma: a
  // left vertex with no augmenting path now never gains one later). The
  // from-scratch rebuild made the decomposition O(rounds * V * E) — hours
  // on the ~20k-communication certificates column generation emits at
  // n = 1000; this is O(rounds * E) in the same worst case and seconds in
  // practice.
  std::vector<std::vector<int>> adj(static_cast<size_t>(n_send));
  for (size_t i = 0; i < edges.size(); ++i) {
    adj[static_cast<size_t>(sender_id[static_cast<size_t>(
        edges[i].sender)])].push_back(static_cast<int>(i));
  }
  std::vector<int> match_left_edge(static_cast<size_t>(n_send), -1);
  std::vector<int> match_right(static_cast<size_t>(n_recv), -1);
  std::vector<char> visited(static_cast<size_t>(n_recv), 0);
  std::size_t live_real = 0;
  for (const WorkEdge& e : edges) {
    if (e.payload >= 0 && e.weight > kEps) ++live_real;
  }

  // Iterative augmenting-path search (the recursive form overflows the
  // stack on thousand-port instances): classic Kuhn over live edges.
  // via_edge[d] is the edge through which stack[d-1] descended into
  // stack[d]'s subtree; on success every ancestor re-matches along it.
  std::vector<int> stack, arc_pos, via_edge;
  auto try_augment = [&](int root) -> bool {
    stack.assign(1, root);
    arc_pos.assign(1, 0);
    via_edge.assign(1, -1);
    while (!stack.empty()) {
      const size_t d = stack.size() - 1;
      const int l = stack[d];
      bool descended = false;
      const auto& arcs = adj[static_cast<size_t>(l)];
      while (arc_pos[d] < static_cast<int>(arcs.size())) {
        const int ei = arcs[static_cast<size_t>(arc_pos[d]++)];
        const WorkEdge& e = edges[static_cast<size_t>(ei)];
        if (e.weight <= kEps) continue;
        const int r = receiver_id[static_cast<size_t>(e.receiver)];
        if (visited[static_cast<size_t>(r)]) continue;
        visited[static_cast<size_t>(r)] = 1;
        if (match_right[static_cast<size_t>(r)] < 0) {
          match_right[static_cast<size_t>(r)] = l;
          match_left_edge[static_cast<size_t>(l)] = ei;
          for (size_t a = d; a > 0; --a) {
            const int ae = via_edge[a];
            const int ar = receiver_id[static_cast<size_t>(
                edges[static_cast<size_t>(ae)].receiver)];
            match_right[static_cast<size_t>(ar)] = stack[a - 1];
            match_left_edge[static_cast<size_t>(stack[a - 1])] = ae;
          }
          return true;
        }
        stack.push_back(match_right[static_cast<size_t>(r)]);
        arc_pos.push_back(0);
        via_edge.push_back(ei);
        descended = true;
        break;
      }
      if (descended) continue;
      stack.pop_back();
      arc_pos.pop_back();
      via_edge.pop_back();
    }
    return false;
  };

  double time_cursor = 0.0;
  double realised = M;  // grows past M only when dust strands weight
  const size_t max_rounds = edges.size() + 8;
  for (size_t round = 0; round < max_rounds; ++round) {
    if (live_real == 0) {
      result.ok = true;
      result.makespan = realised;
      return result;
    }
    // Restore maximality: one augmentation attempt per unmatched left.
    for (int l = 0; l < n_send; ++l) {
      if (match_left_edge[static_cast<size_t>(l)] >= 0) continue;
      bool has_live = false;
      for (int ei : adj[static_cast<size_t>(l)]) {
        if (edges[static_cast<size_t>(ei)].weight > kEps) {
          has_live = true;
          break;
        }
      }
      if (!has_live) continue;
      std::fill(visited.begin(), visited.end(), 0);
      try_augment(l);
    }

    // Peel the minimum matched weight. On an exactly-regular weighted
    // graph the matching is perfect; floating-point dust can break
    // regularity and strand residual weight on a few ports, but a
    // *maximum* matching still zeroes at least one edge per round, so the
    // makespan overshoots M by at most the stranded dust (absorbed by the
    // schedule validators' tolerance).
    double delta = kInfinity;
    for (int l = 0; l < n_send; ++l) {
      const int ei = match_left_edge[static_cast<size_t>(l)];
      if (ei < 0) continue;
      delta = std::min(delta, edges[static_cast<size_t>(ei)].weight);
    }
    if (delta == kInfinity || delta <= kEps) {
      result.ok = false;
      return result;
    }
    ColorSlot slot;
    slot.start = time_cursor;
    slot.length = delta;
    for (int l = 0; l < n_send; ++l) {
      const int ei = match_left_edge[static_cast<size_t>(l)];
      if (ei < 0) continue;
      WorkEdge& e = edges[static_cast<size_t>(ei)];
      e.weight -= delta;
      if (e.payload >= 0) slot.comm_indices.push_back(e.payload);
      if (e.weight < kEps) {
        e.weight = 0.0;
        if (e.payload >= 0) --live_real;
        // Free both endpoints; the next round re-augments from here.
        match_left_edge[static_cast<size_t>(l)] = -1;
        match_right[static_cast<size_t>(
            receiver_id[static_cast<size_t>(e.receiver)])] = -1;
      }
    }
    if (!slot.comm_indices.empty()) {
      realised = std::max(realised, slot.start + slot.length);
      result.slots.push_back(std::move(slot));
    }
    time_cursor += delta;
  }
  result.ok = false;  // should be unreachable
  return result;
}

bool validate_coloring(const ColoringResult& result,
                       std::span<const Communication> comms, int node_count,
                       double tol) {
  if (!result.ok) return false;
  // Slot positions live on the makespan's scale, so their tolerance grows
  // with it (never below the caller's absolute floor, keeping O(1)-scale
  // behaviour unchanged): a fixed absolute tol wrongly rejects valid
  // colorings of fast-rate platforms whose makespans dwarf it, and proves
  // nothing on tiny-rate ones.
  const double slot_tol = tol * std::max(1.0, result.makespan);
  std::vector<double> assigned(comms.size(), 0.0);
  double cursor = 0.0;
  std::vector<char> sender_busy(static_cast<size_t>(node_count), 0);
  std::vector<char> receiver_busy(static_cast<size_t>(node_count), 0);
  for (const ColorSlot& slot : result.slots) {
    if (slot.start < cursor - slot_tol) return false;  // no slot overlap
    cursor = slot.start + slot.length;
    if (cursor > result.makespan + slot_tol) return false;
    for (int ci : slot.comm_indices) {
      const Communication& c = comms[static_cast<size_t>(ci)];
      if (sender_busy[static_cast<size_t>(c.sender)]) return false;
      if (receiver_busy[static_cast<size_t>(c.receiver)]) return false;
      sender_busy[static_cast<size_t>(c.sender)] = 1;
      receiver_busy[static_cast<size_t>(c.receiver)] = 1;
      assigned[static_cast<size_t>(ci)] += slot.length;
    }
    for (int ci : slot.comm_indices) {
      const Communication& c = comms[static_cast<size_t>(ci)];
      sender_busy[static_cast<size_t>(c.sender)] = 0;
      receiver_busy[static_cast<size_t>(c.receiver)] = 0;
    }
  }
  // Each communication's assigned time is checked on its *own* scale — a
  // makespan-scaled tolerance would let a whole small communication vanish
  // from a large schedule unnoticed. The additive floor covers the
  // decomposition's legitimate dust handling: weights within kRelEps * M
  // of zero are snapped/skipped, at most once per peeling round, and the
  // round count is bounded by |E| + 2|V| + 8.
  const double dust_floor = kRelEps * result.makespan *
                            static_cast<double>(comms.size() +
                                                2 * static_cast<size_t>(
                                                        node_count) + 8);
  for (size_t i = 0; i < comms.size(); ++i) {
    double comm_tol =
        tol * std::max(1.0, comms[i].duration) + dust_floor;
    if (std::fabs(assigned[i] - comms[i].duration) > comm_tol) return false;
  }
  return true;
}

}  // namespace pmcast::sched
