#include "sched/edge_coloring.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace pmcast::sched {
namespace {

/// Relative dust tolerance: comparisons inside the decomposition use
/// kRelEps * M, where M is the max port load of the instance. A fixed
/// absolute epsilon mis-classifies on strongly heterogeneous platforms —
/// with rates around 1e-9 it swallows real communications whole, with
/// rates around 1e+9 it treats accumulated fp dust as real residual load.
constexpr double kRelEps = 1e-12;

/// Kuhn's augmenting-path maximum bipartite matching. Sizes here are tiny
/// (ports of one platform), so the O(V·E) bound is more than enough.
class BipartiteMatcher {
 public:
  BipartiteMatcher(int n_left, int n_right)
      : adj_(static_cast<size_t>(n_left)),
        match_left_(static_cast<size_t>(n_left), -1),
        match_right_(static_cast<size_t>(n_right), -1) {}

  void add_edge(int l, int r, int payload) {
    adj_[static_cast<size_t>(l)].push_back({r, payload});
  }

  /// Returns the matching size; match_left()[l] = payload of matched edge.
  int solve() {
    int matched = 0;
    for (int l = 0; l < static_cast<int>(adj_.size()); ++l) {
      visited_.assign(match_right_.size(), 0);
      if (try_augment(l)) ++matched;
    }
    return matched;
  }

  const std::vector<int>& match_left_payload() const { return payload_left_; }
  int left_count() const { return static_cast<int>(adj_.size()); }

  /// payload of the edge matched at left node l, or -1.
  int matched_payload(int l) const {
    return payload_left_.empty() ? -1 : payload_left_[static_cast<size_t>(l)];
  }

  void finalize_payloads() {
    payload_left_.assign(adj_.size(), -1);
    for (size_t l = 0; l < adj_.size(); ++l) {
      if (match_left_[l] >= 0) {
        for (const auto& [r, payload] : adj_[l]) {
          if (r == match_left_[l]) {
            payload_left_[l] = payload;
            break;
          }
        }
      }
    }
  }

  int match_of_left(int l) const { return match_left_[static_cast<size_t>(l)]; }

 private:
  bool try_augment(int l) {
    for (const auto& [r, payload] : adj_[static_cast<size_t>(l)]) {
      auto sr = static_cast<size_t>(r);
      if (visited_[sr]) continue;
      visited_[sr] = 1;
      if (match_right_[sr] < 0 || try_augment(match_right_[sr])) {
        match_right_[sr] = l;
        match_left_[static_cast<size_t>(l)] = r;
        return true;
      }
    }
    return false;
  }

  struct Arc {
    int to;
    int payload;
  };
  std::vector<std::vector<std::pair<int, int>>> adj_;
  std::vector<int> match_left_, match_right_;
  std::vector<int> payload_left_;
  std::vector<char> visited_;
};

}  // namespace

double max_port_load(std::span<const Communication> comms, int node_count) {
  std::vector<double> send(static_cast<size_t>(node_count), 0.0);
  std::vector<double> recv(static_cast<size_t>(node_count), 0.0);
  for (const Communication& c : comms) {
    send[static_cast<size_t>(c.sender)] += c.duration;
    recv[static_cast<size_t>(c.receiver)] += c.duration;
  }
  double load = 0.0;
  for (int v = 0; v < node_count; ++v) {
    load = std::max(load, send[static_cast<size_t>(v)]);
    load = std::max(load, recv[static_cast<size_t>(v)]);
  }
  return load;
}

ColoringResult color_communications(std::span<const Communication> comms,
                                    int node_count) {
  ColoringResult result;
  const double M = max_port_load(comms, node_count);
  result.makespan = M;
  if (!(M > 0.0)) {
    result.ok = true;
    return result;
  }
  // All dust thresholds below scale with the instance's own magnitude.
  const double kEps = kRelEps * M;

  // Working edge list: real communications first, then dummy padding edges
  // (payload -1) that regularise every port load to exactly M.
  struct WorkEdge {
    int sender;
    int receiver;
    double weight;
    int payload;  // index into comms, or -1 for dummy
  };
  std::vector<WorkEdge> edges;
  edges.reserve(comms.size() + 2 * static_cast<size_t>(node_count));
  std::vector<double> send(static_cast<size_t>(node_count), 0.0);
  std::vector<double> recv(static_cast<size_t>(node_count), 0.0);
  for (size_t i = 0; i < comms.size(); ++i) {
    const Communication& c = comms[i];
    if (c.duration <= kEps) continue;
    edges.push_back({c.sender, c.receiver, c.duration, static_cast<int>(i)});
    send[static_cast<size_t>(c.sender)] += c.duration;
    recv[static_cast<size_t>(c.receiver)] += c.duration;
  }

  // Regularise: greedily connect sender deficits to receiver deficits.
  // Total sender deficit may differ from total receiver deficit, so pad with
  // virtual ports (ids >= node_count) until both sides sum to the same value.
  std::vector<std::pair<int, double>> sdef, rdef;
  double total_sdef = 0.0, total_rdef = 0.0;
  for (int v = 0; v < node_count; ++v) {
    double ds = M - send[static_cast<size_t>(v)];
    double dr = M - recv[static_cast<size_t>(v)];
    if (ds > kEps) {
      sdef.push_back({v, ds});
      total_sdef += ds;
    }
    if (dr > kEps) {
      rdef.push_back({v, dr});
      total_rdef += dr;
    }
  }
  int virtual_ports = node_count;
  while (total_sdef + kEps < total_rdef) {
    double d = std::min(M, total_rdef - total_sdef);
    sdef.push_back({virtual_ports++, d});
    total_sdef += d;
  }
  while (total_rdef + kEps < total_sdef) {
    double d = std::min(M, total_sdef - total_rdef);
    rdef.push_back({virtual_ports++, d});
    total_rdef += d;
  }
  {
    size_t si = 0, ri = 0;
    while (si < sdef.size() && ri < rdef.size()) {
      double d = std::min(sdef[si].second, rdef[ri].second);
      if (d > kEps) {
        edges.push_back({sdef[si].first, rdef[ri].first, d, -1});
      }
      sdef[si].second -= d;
      rdef[ri].second -= d;
      if (sdef[si].second <= kEps) ++si;
      if (rdef[ri].second <= kEps) ++ri;
    }
  }

  // Peel perfect matchings. Port ids are compacted to the ports that carry
  // load (every compacted port has total load exactly M throughout).
  std::vector<int> sender_id(static_cast<size_t>(virtual_ports), -1);
  std::vector<int> receiver_id(static_cast<size_t>(virtual_ports), -1);
  int n_send = 0, n_recv = 0;
  for (const WorkEdge& e : edges) {
    if (sender_id[static_cast<size_t>(e.sender)] < 0) {
      sender_id[static_cast<size_t>(e.sender)] = n_send++;
    }
    if (receiver_id[static_cast<size_t>(e.receiver)] < 0) {
      receiver_id[static_cast<size_t>(e.receiver)] = n_recv++;
    }
  }

  double time_cursor = 0.0;
  double realised = M;  // grows past M only when dust strands weight
  const size_t max_rounds = edges.size() + 8;
  for (size_t round = 0; round < max_rounds; ++round) {
    // Remaining live edges.
    std::vector<int> live;
    bool real_left = false;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].weight > kEps) {
        live.push_back(static_cast<int>(i));
        if (edges[i].payload >= 0) real_left = true;
      }
    }
    if (!real_left) {
      result.ok = true;
      result.makespan = realised;
      return result;
    }

    BipartiteMatcher matcher(n_send, n_recv);
    for (int ei : live) {
      const WorkEdge& e = edges[static_cast<size_t>(ei)];
      matcher.add_edge(sender_id[static_cast<size_t>(e.sender)],
                       receiver_id[static_cast<size_t>(e.receiver)], ei);
    }
    // On an exactly-regular weighted graph the matching is perfect. A port
    // whose load sits within dust distance of M gets no dummy padding, so
    // floating-point dust can break regularity and strand residual weight
    // on a few ports; a *maximum* matching still zeroes at least one edge
    // per round, so peeling it keeps the decomposition going and the
    // makespan overshoots M by at most the stranded dust (absorbed by the
    // schedule validators' tolerance).
    matcher.solve();
    matcher.finalize_payloads();

    // Peel the minimum matched weight.
    double delta = kInfinity;
    std::vector<int> matched_edges;
    for (int l = 0; l < n_send; ++l) {
      int ei = matcher.matched_payload(l);
      if (ei < 0) continue;
      matched_edges.push_back(ei);
      delta = std::min(delta, edges[static_cast<size_t>(ei)].weight);
    }
    if (matched_edges.empty() || delta == kInfinity || delta <= kEps) {
      result.ok = false;
      return result;
    }
    ColorSlot slot;
    slot.start = time_cursor;
    slot.length = delta;
    for (int ei : matched_edges) {
      WorkEdge& e = edges[static_cast<size_t>(ei)];
      e.weight -= delta;
      if (e.weight < kEps) e.weight = 0.0;
      if (e.payload >= 0) slot.comm_indices.push_back(e.payload);
    }
    if (!slot.comm_indices.empty()) {
      realised = std::max(realised, slot.start + slot.length);
      result.slots.push_back(std::move(slot));
    }
    time_cursor += delta;
  }
  result.ok = false;  // should be unreachable
  return result;
}

bool validate_coloring(const ColoringResult& result,
                       std::span<const Communication> comms, int node_count,
                       double tol) {
  if (!result.ok) return false;
  // Slot positions live on the makespan's scale, so their tolerance grows
  // with it (never below the caller's absolute floor, keeping O(1)-scale
  // behaviour unchanged): a fixed absolute tol wrongly rejects valid
  // colorings of fast-rate platforms whose makespans dwarf it, and proves
  // nothing on tiny-rate ones.
  const double slot_tol = tol * std::max(1.0, result.makespan);
  std::vector<double> assigned(comms.size(), 0.0);
  double cursor = 0.0;
  for (const ColorSlot& slot : result.slots) {
    if (slot.start < cursor - slot_tol) return false;  // no slot overlap
    cursor = slot.start + slot.length;
    if (cursor > result.makespan + slot_tol) return false;
    std::vector<char> sender_busy(static_cast<size_t>(node_count), 0);
    std::vector<char> receiver_busy(static_cast<size_t>(node_count), 0);
    for (int ci : slot.comm_indices) {
      const Communication& c = comms[static_cast<size_t>(ci)];
      if (sender_busy[static_cast<size_t>(c.sender)]) return false;
      if (receiver_busy[static_cast<size_t>(c.receiver)]) return false;
      sender_busy[static_cast<size_t>(c.sender)] = 1;
      receiver_busy[static_cast<size_t>(c.receiver)] = 1;
      assigned[static_cast<size_t>(ci)] += slot.length;
    }
  }
  // Each communication's assigned time is checked on its *own* scale — a
  // makespan-scaled tolerance would let a whole small communication vanish
  // from a large schedule unnoticed. The additive floor covers the
  // decomposition's legitimate dust handling: weights within kRelEps * M
  // of zero are snapped/skipped, at most once per peeling round, and the
  // round count is bounded by |E| + 2|V| + 8.
  const double dust_floor = kRelEps * result.makespan *
                            static_cast<double>(comms.size() +
                                                2 * static_cast<size_t>(
                                                        node_count) + 8);
  for (size_t i = 0; i < comms.size(); ++i) {
    double comm_tol =
        tol * std::max(1.0, comms[i].duration) + dust_floor;
    if (std::fabs(assigned[i] - comms[i].duration) > comm_tol) return false;
  }
  return true;
}

}  // namespace pmcast::sched
