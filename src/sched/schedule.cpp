#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pmcast::sched {

Schedule build_schedule(std::vector<Transfer> transfers, int node_count) {
  Schedule schedule;
  schedule.transfers = std::move(transfers);

  std::vector<Communication> comms;
  comms.reserve(schedule.transfers.size());
  for (const Transfer& t : schedule.transfers) {
    comms.push_back({t.from, t.to, t.duration});
  }
  ColoringResult coloring = color_communications(comms, node_count);
  if (!coloring.ok) return schedule;

  schedule.period = coloring.makespan;
  for (const ColorSlot& slot : coloring.slots) {
    for (int ci : slot.comm_indices) {
      schedule.slots.push_back({slot.start, slot.length, ci});
    }
  }
  std::sort(schedule.slots.begin(), schedule.slots.end(),
            [](const TimedSlot& a, const TimedSlot& b) {
              return a.start < b.start;
            });
  schedule.ok = true;
  return schedule;
}

std::string validate_schedule(const Schedule& schedule, int node_count,
                              double tol) {
  if (!schedule.ok) return "schedule not built";
  std::ostringstream err;
  std::vector<double> assigned(schedule.transfers.size(), 0.0);
  for (size_t i = 0; i < schedule.slots.size(); ++i) {
    const TimedSlot& s = schedule.slots[i];
    if (s.start < -tol || s.start + s.length > schedule.period + tol) {
      err << "slot " << i << " outside period";
      return err.str();
    }
    assigned[static_cast<size_t>(s.transfer)] += s.length;
  }
  // One-port overlap check, bucketed by port. Two slots conflict only when
  // they share a sender or a receiver, so sort each port's slots by start
  // and sweep with the furthest end seen so far: slot k overlaps some
  // earlier slot by more than tol iff it overlaps the max-end one by more
  // than tol, making the sweep exactly equivalent to comparing all pairs.
  // The former all-pairs scan was quadratic in slot count, which column
  // generation's large certificates (millions of slots at n = 1000) turn
  // into the verification bottleneck.
  std::vector<std::vector<int>> by_sender(static_cast<size_t>(node_count));
  std::vector<std::vector<int>> by_receiver(static_cast<size_t>(node_count));
  for (size_t i = 0; i < schedule.slots.size(); ++i) {
    const Transfer& t =
        schedule.transfers[static_cast<size_t>(schedule.slots[i].transfer)];
    by_sender[static_cast<size_t>(t.from)].push_back(static_cast<int>(i));
    by_receiver[static_cast<size_t>(t.to)].push_back(static_cast<int>(i));
  }
  auto check_bucket = [&](std::vector<int>& bucket) -> bool {
    std::sort(bucket.begin(), bucket.end(), [&](int a, int b) {
      return schedule.slots[static_cast<size_t>(a)].start <
             schedule.slots[static_cast<size_t>(b)].start;
    });
    double max_end = -kInfinity;
    int max_end_slot = -1;
    for (int idx : bucket) {
      const TimedSlot& s = schedule.slots[static_cast<size_t>(idx)];
      double overlap = std::min(max_end, s.start + s.length) - s.start;
      if (overlap > tol) {
        err << "one-port violation: slots " << max_end_slot << " and " << idx
            << " overlap by " << overlap;
        return false;
      }
      if (s.start + s.length > max_end) {
        max_end = s.start + s.length;
        max_end_slot = idx;
      }
    }
    return true;
  };
  for (int v = 0; v < node_count; ++v) {
    if (!check_bucket(by_sender[static_cast<size_t>(v)]) ||
        !check_bucket(by_receiver[static_cast<size_t>(v)])) {
      return err.str();
    }
  }
  for (size_t t = 0; t < schedule.transfers.size(); ++t) {
    if (std::fabs(assigned[t] - schedule.transfers[t].duration) > tol) {
      err << "transfer " << t << " scheduled for " << assigned[t]
          << " != duration " << schedule.transfers[t].duration;
      return err.str();
    }
  }
  return {};
}

}  // namespace pmcast::sched
