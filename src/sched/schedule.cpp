#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pmcast::sched {

Schedule build_schedule(std::vector<Transfer> transfers, int node_count) {
  Schedule schedule;
  schedule.transfers = std::move(transfers);

  std::vector<Communication> comms;
  comms.reserve(schedule.transfers.size());
  for (const Transfer& t : schedule.transfers) {
    comms.push_back({t.from, t.to, t.duration});
  }
  ColoringResult coloring = color_communications(comms, node_count);
  if (!coloring.ok) return schedule;

  schedule.period = coloring.makespan;
  for (const ColorSlot& slot : coloring.slots) {
    for (int ci : slot.comm_indices) {
      schedule.slots.push_back({slot.start, slot.length, ci});
    }
  }
  std::sort(schedule.slots.begin(), schedule.slots.end(),
            [](const TimedSlot& a, const TimedSlot& b) {
              return a.start < b.start;
            });
  schedule.ok = true;
  return schedule;
}

std::string validate_schedule(const Schedule& schedule, int node_count,
                              double tol) {
  if (!schedule.ok) return "schedule not built";
  std::ostringstream err;
  std::vector<double> assigned(schedule.transfers.size(), 0.0);
  for (size_t i = 0; i < schedule.slots.size(); ++i) {
    const TimedSlot& s = schedule.slots[i];
    if (s.start < -tol || s.start + s.length > schedule.period + tol) {
      err << "slot " << i << " outside period";
      return err.str();
    }
    assigned[static_cast<size_t>(s.transfer)] += s.length;
  }
  // Pairwise overlap check (slot counts are small: one period).
  for (size_t i = 0; i < schedule.slots.size(); ++i) {
    const TimedSlot& a = schedule.slots[i];
    const Transfer& ta = schedule.transfers[static_cast<size_t>(a.transfer)];
    for (size_t j = i + 1; j < schedule.slots.size(); ++j) {
      const TimedSlot& b = schedule.slots[j];
      const Transfer& tb = schedule.transfers[static_cast<size_t>(b.transfer)];
      bool share_port = ta.from == tb.from || ta.to == tb.to;
      if (!share_port) continue;
      double overlap = std::min(a.start + a.length, b.start + b.length) -
                       std::max(a.start, b.start);
      if (overlap > tol) {
        err << "one-port violation: slots " << i << " and " << j
            << " overlap by " << overlap;
        return err.str();
      }
    }
  }
  for (size_t t = 0; t < schedule.transfers.size(); ++t) {
    if (std::fabs(assigned[t] - schedule.transfers[t].duration) > tol) {
      err << "transfer " << t << " scheduled for " << assigned[t]
          << " != duration " << schedule.transfers[t].duration;
      return err.str();
    }
  }
  (void)node_count;
  return {};
}

}  // namespace pmcast::sched
