#pragma once
/// \file schedule.hpp
/// Periodic steady-state schedules. A schedule is a period T plus a set of
/// per-period transfers; each transfer belongs to a *stream* (one multicast
/// tree or one flow path) and carries a *generation offset*: the transfer at
/// depth d of its stream ships, during period r, the messages of
/// generation r - offset (offset = d - 1). This convention makes causality
/// hold for any intra-period ordering, because the upstream hop finishes a
/// generation one full period earlier (see DESIGN.md §5); the simulator
/// re-verifies it dynamically anyway.

#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "sched/edge_coloring.hpp"

namespace pmcast::sched {

/// One per-period communication of a periodic schedule.
struct Transfer {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double duration = 0.0;  ///< busy time per period on this hop
  int stream = 0;         ///< which tree / flow path this hop belongs to
  int offset = 0;         ///< generation offset (depth - 1 along the stream)
};

/// A timed occurrence of (part of) a transfer within the period. The
/// colouring may preempt a transfer across several slots — messages are
/// divisible in this model.
struct TimedSlot {
  double start = 0.0;
  double length = 0.0;
  int transfer = -1;  ///< index into Schedule::transfers
};

struct Schedule {
  bool ok = false;
  double period = 0.0;
  std::vector<Transfer> transfers;
  std::vector<TimedSlot> slots;
};

/// Orchestrate \p transfers into a period via weighted edge colouring.
/// The resulting period equals the max port load (the paper's bound T).
Schedule build_schedule(std::vector<Transfer> transfers, int node_count);

/// Static verification: slots lie in [0, period], no two simultaneous slots
/// share a sender or receiver port, and every transfer's slot time sums to
/// its duration. Returns an empty string on success, else a diagnostic.
std::string validate_schedule(const Schedule& schedule, int node_count,
                              double tol = 1e-6);

}  // namespace pmcast::sched
