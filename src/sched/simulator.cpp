#include "sched/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace pmcast::sched {
namespace {

constexpr double kTol = 1e-6;

}  // namespace

SimulationReport simulate(const Schedule& schedule,
                          std::span<const StreamInfo> streams, int node_count,
                          int periods) {
  SimulationReport report;
  report.periods = periods;
  if (!schedule.ok) {
    report.error = "schedule not built";
    return report;
  }
  std::string static_err = validate_schedule(schedule, node_count);
  if (!static_err.empty()) {
    report.error = "static validation failed: " + static_err;
    return report;
  }
  const double T = schedule.period;
  report.elapsed = T * periods;

  const int num_streams = static_cast<int>(streams.size());
  for (const Transfer& t : schedule.transfers) {
    if (t.stream < 0 || t.stream >= num_streams) {
      report.error = "transfer references unknown stream";
      return report;
    }
  }
  for (const StreamInfo& s : streams) {
    report.nominal_throughput += static_cast<double>(s.msgs_per_period) / T;
  }

  // Per-transfer slot window within the period: a generation is needed at
  // the sender before the transfer's first slot and is available at the
  // receiver after its last slot.
  struct Window {
    double first_start = std::numeric_limits<double>::infinity();
    double last_end = 0.0;
  };
  std::vector<Window> windows(schedule.transfers.size());
  for (const TimedSlot& slot : schedule.slots) {
    Window& w = windows[static_cast<size_t>(slot.transfer)];
    w.first_start = std::min(w.first_start, slot.start);
    w.last_end = std::max(w.last_end, slot.start + slot.length);
  }

  // avail[stream][node][gen] = absolute time the node holds the generation.
  const double kUnset = std::numeric_limits<double>::infinity();
  std::vector<std::vector<std::vector<double>>> avail(
      static_cast<size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    avail[static_cast<size_t>(s)].assign(
        static_cast<size_t>(node_count),
        std::vector<double>(static_cast<size_t>(periods), kUnset));
  }

  // Transfers ordered by their first slot within a period.
  std::vector<int> order(schedule.transfers.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return windows[static_cast<size_t>(a)].first_start <
           windows[static_cast<size_t>(b)].first_start;
  });

  std::ostringstream err;
  for (int r = 0; r < periods; ++r) {
    for (int ti : order) {
      const Transfer& t = schedule.transfers[static_cast<size_t>(ti)];
      if (t.duration <= 0.0) continue;
      const Window& w = windows[static_cast<size_t>(ti)];
      int g = r - t.offset;
      if (g < 0 || g >= periods) continue;
      const StreamInfo& stream = streams[static_cast<size_t>(t.stream)];
      double need_by = r * T + w.first_start + kTol;
      double sender_has;
      if (t.from == stream.source) {
        sender_has = g * T;  // the source emits generation g in period g
      } else {
        sender_has = avail[static_cast<size_t>(t.stream)]
                          [static_cast<size_t>(t.from)][static_cast<size_t>(g)];
      }
      if (sender_has > need_by) {
        err << "causality violation: stream " << t.stream << " gen " << g
            << " not at node " << t.from << " before period " << r
            << " transfer " << ti;
        report.error = err.str();
        return report;
      }
      double& slot_avail = avail[static_cast<size_t>(t.stream)]
                                [static_cast<size_t>(t.to)]
                                [static_cast<size_t>(g)];
      if (slot_avail != kUnset) {
        err << "duplicate delivery: stream " << t.stream << " gen " << g
            << " delivered twice to node " << t.to;
        report.error = err.str();
        return report;
      }
      slot_avail = r * T + w.last_end;
    }
  }

  // Count fully-delivered generations (all sinks) per stream, excluding the
  // pipeline warm-up tail, and derive the measured steady-state throughput.
  double measured = 0.0;
  for (int s = 0; s < num_streams; ++s) {
    const StreamInfo& stream = streams[static_cast<size_t>(s)];
    int max_offset = 0;
    for (const Transfer& t : schedule.transfers) {
      if (t.stream == s) max_offset = std::max(max_offset, t.offset);
    }
    int expected = periods - max_offset;
    if (expected <= 0) {
      report.error = "too few periods to drain the pipeline";
      return report;
    }
    long long full = 0;
    for (int g = 0; g < expected; ++g) {
      bool all = true;
      for (NodeId sink : stream.sinks) {
        if (sink == stream.source) continue;
        if (avail[static_cast<size_t>(s)][static_cast<size_t>(sink)]
                 [static_cast<size_t>(g)] == kUnset) {
          all = false;
          break;
        }
      }
      if (!all) {
        err << "stream " << s << " generation " << g
            << " never reached every sink";
        report.error = err.str();
        return report;
      }
      ++full;
    }
    report.messages_delivered += full * stream.msgs_per_period;
    measured += static_cast<double>(full * stream.msgs_per_period) /
                (static_cast<double>(expected) * T);
  }
  report.measured_throughput = measured;
  report.ok = true;
  return report;
}

}  // namespace pmcast::sched
