#pragma once
/// \file simulator.hpp
/// Discrete-event replay of a periodic schedule under the one-port model.
///
/// The simulator unrolls the periodic schedule over many periods and checks,
/// message by message, that
///   * every hop only forwards generations its sender actually holds
///     (causality, checked against absolute completion times),
///   * every sink of every stream receives every generation exactly once,
///   * the measured steady-state throughput matches the nominal one.
/// This is the "experimental" half of the reproduction: LP numbers are only
/// trusted once a reconstructed schedule survives this replay.

#include <span>
#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace pmcast::sched {

/// Metadata of one stream (a multicast tree or a flow path) of a schedule.
struct StreamInfo {
  NodeId source = kInvalidNode;
  std::vector<NodeId> sinks;   ///< nodes that must receive every generation
  int msgs_per_period = 1;     ///< messages shipped by one generation
};

struct SimulationReport {
  bool ok = false;
  std::string error;
  int periods = 0;
  double elapsed = 0.0;              ///< total simulated time
  double nominal_throughput = 0.0;   ///< sum over streams of msgs / period
  double measured_throughput = 0.0;  ///< generations fully delivered / time
  long long messages_delivered = 0;
};

/// Replay \p schedule for \p periods periods. Streams are indexed by the
/// Transfer::stream field; stream s uses streams[s].
SimulationReport simulate(const Schedule& schedule,
                          std::span<const StreamInfo> streams, int node_count,
                          int periods = 32);

}  // namespace pmcast::sched
