#include "topology/tiers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmcast::topo {

TiersParams TiersParams::small30() {
  TiersParams p;
  p.wan_nodes = 5;
  p.mans = 2;
  p.man_nodes = 4;
  p.lans = 4;
  p.lan_nodes = 17;
  p.wan_redundancy = 2;
  p.man_redundancy = 1;
  return p;  // 5 + 8 + 17 = 30 nodes
}

TiersParams TiersParams::big65() {
  TiersParams p;
  p.wan_nodes = 6;
  p.mans = 3;
  p.man_nodes = 4;
  p.lans = 9;
  p.lan_nodes = 47;
  p.wan_redundancy = 3;
  p.man_redundancy = 1;
  return p;  // 6 + 12 + 47 = 65 nodes
}

namespace {

double sample_cost(Rng& rng, double lo, double hi) {
  // Integer-valued times (as in the paper's figures) keep the LPs rational.
  return std::floor(rng.uniform_real(lo, hi + 1.0));
}

/// Random tree over \p nodes by uniform attachment, plus \p redundancy extra
/// edges between distinct non-adjacent pairs. All links bidirectional.
void build_level(Digraph& g, const std::vector<NodeId>& nodes, int redundancy,
                 double lo, double hi, Rng& rng) {
  for (size_t i = 1; i < nodes.size(); ++i) {
    NodeId parent = nodes[rng.uniform(i)];
    g.add_bidirectional(nodes[i], parent, sample_cost(rng, lo, hi));
  }
  int added = 0;
  int guard = 0;
  while (added < redundancy && guard++ < 64 && nodes.size() >= 3) {
    NodeId a = nodes[rng.uniform(nodes.size())];
    NodeId b = nodes[rng.uniform(nodes.size())];
    if (a == b || g.find_edge(a, b).has_value()) continue;
    g.add_bidirectional(a, b, sample_cost(rng, lo, hi));
    ++added;
  }
}

}  // namespace

Platform generate_tiers(const TiersParams& params, std::uint64_t seed) {
  assert(params.wan_nodes >= 1 && params.mans >= 1 && params.lans >= 1);
  Rng rng(seed);
  Platform platform;
  Digraph& g = platform.graph;

  // WAN backbone.
  for (int i = 0; i < params.wan_nodes; ++i) {
    platform.wan.push_back(g.add_node("wan" + std::to_string(i)));
  }
  build_level(g, platform.wan, params.wan_redundancy, params.wan_cost_lo,
              params.wan_cost_hi, rng);

  // MANs, each attached to a random WAN gateway.
  std::vector<std::vector<NodeId>> man_groups;
  for (int m = 0; m < params.mans; ++m) {
    std::vector<NodeId> group;
    for (int i = 0; i < params.man_nodes; ++i) {
      NodeId v = g.add_node("man" + std::to_string(m) + "_" +
                            std::to_string(i));
      group.push_back(v);
      platform.man.push_back(v);
    }
    build_level(g, group, params.man_redundancy, params.man_cost_lo,
                params.man_cost_hi, rng);
    NodeId gateway = platform.wan[rng.uniform(platform.wan.size())];
    g.add_bidirectional(group[0], gateway,
                        sample_cost(rng, params.wan_cost_lo,
                                    params.wan_cost_hi));
    man_groups.push_back(std::move(group));
  }

  // LAN stars: each LAN hangs off a random MAN node; leaves split the total
  // LAN node budget as evenly as possible.
  int remaining = params.lan_nodes;
  for (int l = 0; l < params.lans; ++l) {
    int lans_left = params.lans - l;
    int count = (remaining + lans_left - 1) / lans_left;  // ceil split
    count = std::min(count, remaining);
    const auto& group = man_groups[rng.uniform(man_groups.size())];
    NodeId hub = group[rng.uniform(group.size())];
    for (int i = 0; i < count; ++i) {
      NodeId leaf = g.add_node("lan" + std::to_string(l) + "_" +
                               std::to_string(i));
      platform.lan.push_back(leaf);
      g.add_bidirectional(hub, leaf,
                          sample_cost(rng, params.lan_cost_lo,
                                      params.lan_cost_hi));
    }
    remaining -= count;
  }
  assert(remaining == 0);

  platform.source = platform.wan[rng.uniform(platform.wan.size())];
  return platform;
}

std::vector<NodeId> sample_targets(const Platform& platform, double density,
                                   Rng& rng) {
  assert(density >= 0.0 && density <= 1.0);
  auto n = static_cast<size_t>(
      std::lround(density * static_cast<double>(platform.lan.size())));
  n = std::max<size_t>(n, 1);
  n = std::min(n, platform.lan.size());
  return rng.sample(platform.lan, n);
}

}  // namespace pmcast::topo
