#include "prefix/prefix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pmcast::prefix {

SchemeFeasibility check_scheme(const PrefixProblem& problem,
                               const Scheme& scheme, double period,
                               double tol) {
  SchemeFeasibility result;
  const int n = problem.graph.node_count();
  std::vector<double> send(static_cast<size_t>(n), 0.0);
  std::vector<double> recv(static_cast<size_t>(n), 0.0);
  std::vector<double> compute(static_cast<size_t>(n), 0.0);
  std::ostringstream detail;

  for (const SchemeComm& c : scheme.comms) {
    double edge_cost = problem.graph.cost(c.from, c.to);
    if (edge_cost == kInfinity) {
      detail << "comm uses missing edge " << c.from << "->" << c.to;
      result.detail = detail.str();
      return result;
    }
    if (c.hi < c.lo || c.count < 0.0) {
      result.detail = "malformed communication";
      return result;
    }
    double busy = c.count * PrefixProblem::data_size(c.lo, c.hi) * edge_cost;
    send[static_cast<size_t>(c.from)] += busy;
    recv[static_cast<size_t>(c.to)] += busy;
  }
  for (const SchemeComp& c : scheme.comps) {
    double w = problem.compute_weight[static_cast<size_t>(c.node)];
    if (c.tasks > 0.0 && w == kInfinity) {
      detail << "node " << c.node << " cannot compute";
      result.detail = detail.str();
      return result;
    }
    if (c.tasks > 0.0) compute[static_cast<size_t>(c.node)] += c.tasks * w;
  }

  for (int v = 0; v < n; ++v) {
    result.max_send = std::max(result.max_send, send[static_cast<size_t>(v)]);
    result.max_recv = std::max(result.max_recv, recv[static_cast<size_t>(v)]);
    result.max_compute =
        std::max(result.max_compute, compute[static_cast<size_t>(v)]);
  }
  double load =
      std::max({result.max_send, result.max_recv, result.max_compute});
  if (load <= period + tol) {
    result.feasible = true;
  } else {
    detail << "load " << load << " exceeds period " << period;
    result.detail = detail.str();
  }
  return result;
}

PrefixProblem problem_from_reduction(const setcover::PrefixReduction& red) {
  PrefixProblem problem;
  problem.graph = red.graph;
  problem.compute_weight = red.compute_weight;
  problem.participants.push_back(red.source);
  for (NodeId v : red.prime_nodes) problem.participants.push_back(v);
  return problem;
}

Scheme canonical_scheme(const setcover::PrefixReduction& red,
                        std::span<const int> cover) {
  Scheme scheme;
  const int n = static_cast<int>(red.element_nodes.size());

  // P_s -> C_i for every chosen set: message [0,0].
  for (int ci : cover) {
    scheme.comms.push_back(
        {red.source, red.set_nodes[static_cast<size_t>(ci)], 0, 0, 1.0});
  }

  // C_i -> X_j for the *leftmost* chosen set containing j (proof's rule so
  // each X_j receives [0,0] exactly once).
  std::vector<int> sorted_cover(cover.begin(), cover.end());
  std::sort(sorted_cover.begin(), sorted_cover.end());
  std::vector<char> element_served(static_cast<size_t>(n), 0);
  for (int ci : sorted_cover) {
    NodeId c = red.set_nodes[static_cast<size_t>(ci)];
    for (EdgeId e : red.graph.out_edges(c)) {
      NodeId x = red.graph.edge(e).to;
      for (int j = 0; j < n; ++j) {
        if (red.element_nodes[static_cast<size_t>(j)] == x &&
            !element_served[static_cast<size_t>(j)]) {
          element_served[static_cast<size_t>(j)] = 1;
          scheme.comms.push_back({c, x, 0, 0, 1.0});
        }
      }
    }
  }

  // X_j -> X'_j: one [0,0] per period.
  for (int j = 1; j <= n; ++j) {
    scheme.comms.push_back({red.element_nodes[static_cast<size_t>(j - 1)],
                            red.prime_nodes[static_cast<size_t>(j - 1)], 0, 0,
                            1.0});
  }

  // X'_i -> X'_{i+1}: the i single values [1,1]..[i,i] (X'_i owns x_i and
  // relays x_1..x_{i-1} received from its predecessor).
  for (int i = 1; i < n; ++i) {
    for (int k = 1; k <= i; ++k) {
      scheme.comms.push_back({red.prime_nodes[static_cast<size_t>(i - 1)],
                              red.prime_nodes[static_cast<size_t>(i)], k, k,
                              1.0});
    }
  }

  // X'_i computes y_i = (((x_0 + x_1) + x_2) ... ) + x_i: i unit tasks.
  for (int i = 1; i <= n; ++i) {
    scheme.comps.push_back({red.prime_nodes[static_cast<size_t>(i - 1)],
                            static_cast<double>(i)});
  }
  return scheme;
}

}  // namespace pmcast::prefix
