#pragma once
/// \file prefix.hpp
/// Pipelined parallel-prefix operations (Section 4.2 of the paper).
///
/// Processors P_0..P_N own values x_0..x_N; P_i must end up with
/// y_i = x_0 + x_1 + ... + x_i (non-commutative associative +). In
/// steady state a *prefix allocation scheme* describes, per period, which
/// partially-reduced intervals [k,m] travel on which edges and which
/// reduction tasks run where. Data sizes follow the paper's model
/// f(k,m) = m-k+1 and unit task weights g = 1.
///
/// The paper proves (Theorem 5) that maximising the steady-state throughput
/// of such schemes is NP-complete, via the Fig. 3 gadget. This module
/// provides the scheme representation, a feasibility checker (one-port
/// communication loads + compute loads against a period), and the canonical
/// scheme used in the proof's "cover => throughput 1" direction.

#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "setcover/reductions.hpp"

namespace pmcast::prefix {

/// The platform/application pair (G, P, f, g).
struct PrefixProblem {
  Digraph graph;
  std::vector<NodeId> participants;    ///< P_0..P_N in order
  std::vector<double> compute_weight;  ///< w(v); +inf when v cannot compute

  /// Size of the partially reduced message [k,m] (paper: f(k,m) = m-k+1).
  static double data_size(int k, int m) { return m - k + 1; }
};

/// One per-period communication of a scheme: the interval [lo,hi] shipped
/// \p count times per period on edge from->to.
struct SchemeComm {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  int lo = 0, hi = 0;
  double count = 1.0;
};

/// Per-period computation: \p tasks unit reductions executed on \p node.
struct SchemeComp {
  NodeId node = kInvalidNode;
  double tasks = 0.0;
};

struct Scheme {
  std::vector<SchemeComm> comms;
  std::vector<SchemeComp> comps;
};

struct SchemeFeasibility {
  bool feasible = false;
  double max_send = 0.0;     ///< max per-node send-port occupation
  double max_recv = 0.0;     ///< max per-node receive-port occupation
  double max_compute = 0.0;  ///< max per-node compute occupation
  std::string detail;
};

/// Check one period of \p scheme against period length \p period: every
/// send port, receive port and compute unit must be occupied at most
/// \p period time units. Edges used must exist in the platform.
SchemeFeasibility check_scheme(const PrefixProblem& problem,
                               const Scheme& scheme, double period,
                               double tol = 1e-9);

/// Wrap the Fig. 3 gadget as a PrefixProblem (participants = {P_s, X'_i}).
PrefixProblem problem_from_reduction(const setcover::PrefixReduction& red);

/// The canonical throughput-1 scheme of the Theorem 5 proof for a chosen
/// cover: x_0 fans out through the chosen C_i to every X_j, crosses to X'_j,
/// the X'-chain forwards the partial values and each X'_i reduces y_i.
/// Feasible with period 1 iff \p cover is a cover of size <= B.
Scheme canonical_scheme(const setcover::PrefixReduction& red,
                        std::span<const int> cover);

}  // namespace pmcast::prefix
