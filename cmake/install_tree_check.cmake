# Install-tree acceptance check, run as a CTest test (see CMakeLists.txt):
#   1. `cmake --install` the finished build into a throwaway prefix;
#   2. configure tests/install/ — a minimal client project that does
#      find_package(pmcast CONFIG REQUIRED) and compiles
#      examples/quickstart.cpp against the *installed* package only;
#   3. build it and run the resulting binary.
# Any failure (missing export file, broken header layout, version drift,
# an example leaking a src/-internal include) fails the test.
#
# Required -D arguments: BUILD_DIR, SOURCE_DIR, STAGE_DIR, GENERATOR,
# BUILD_TYPE, SANITIZE (may be empty; forwarded so a sanitized build tree
# links against a matching-instrumented client).

foreach(arg BUILD_DIR SOURCE_DIR STAGE_DIR GENERATOR)
  if(NOT DEFINED ${arg})
    message(FATAL_ERROR "install_tree_check.cmake: missing -D${arg}=")
  endif()
endforeach()

set(prefix ${STAGE_DIR}/prefix)
set(client_build ${STAGE_DIR}/client-build)
file(REMOVE_RECURSE ${STAGE_DIR})

message(STATUS "install-tree check: installing to ${prefix}")
execute_process(
    COMMAND ${CMAKE_COMMAND} --install ${BUILD_DIR} --prefix ${prefix}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cmake --install failed (${rc})")
endif()

message(STATUS "install-tree check: configuring client against ${prefix}")
execute_process(
    COMMAND ${CMAKE_COMMAND}
            -S ${SOURCE_DIR}/tests/install
            -B ${client_build}
            -G ${GENERATOR}
            -DCMAKE_PREFIX_PATH=${prefix}
            -DCMAKE_BUILD_TYPE=${BUILD_TYPE}
            -DPMCAST_SANITIZE=${SANITIZE}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "client configure against the install tree failed (${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${client_build}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "client build against the install tree failed (${rc})")
endif()

message(STATUS "install-tree check: running the installed-API quickstart")
execute_process(
    COMMAND ${client_build}/quickstart
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "installed-API quickstart exited with ${rc}")
endif()

message(STATUS "install-tree check: OK")
