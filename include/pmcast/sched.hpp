#pragma once
/// \file pmcast/sched.hpp
/// Toolkit re-export: one-port schedules — construction, König
/// edge-coloring orchestration and the discrete-event simulator.
/// Unversioned; see DESIGN_API.md.

#include "sched/edge_coloring.hpp"
#include "sched/schedule.hpp"
#include "sched/simulator.hpp"
