#pragma once
/// \file pmcast/topology.hpp
/// Toolkit re-export: the paper's Tiers-style WAN/MAN/LAN platform
/// generator. Unversioned; see DESIGN_API.md.

#include "topology/tiers.hpp"
