#pragma once
/// \file pmcast/strategy.hpp
/// Stable identifiers for the solver strategies a SolveRequest may allow
/// and a SolveResponse reports on. Mirrors the runtime's internal Strategy
/// enum one-to-one (checked by a static_assert in the Service
/// implementation) so the facade stays decoupled from runtime headers.
///
/// This header is self-contained (standard library only).

#include <optional>
#include <string_view>
#include <vector>

namespace pmcast {

enum class StrategyId {
  Mcph = 0,            ///< paper Fig. 9 tree heuristic
  PrunedDijkstra,      ///< Steiner baseline
  Kmb,                 ///< Steiner baseline (distance network)
  MulticastUb,         ///< LP scatter bound, always reconstructible
  AugmentedSources,    ///< paper Fig. 8 multisource heuristic
  ReducedBroadcast,    ///< paper Fig. 6 platform heuristic
  AugmentedMulticast,  ///< paper Fig. 7 platform heuristic
  Exact,               ///< tree-enumeration LP (small instances only)
};

/// Stable lowercase token ("mcph", "pruned_dijkstra", ...). These strings
/// are part of the v1 contract (they appear in BENCH_*.json and logs).
inline const char* strategy_id_name(StrategyId id) {
  switch (id) {
    case StrategyId::Mcph: return "mcph";
    case StrategyId::PrunedDijkstra: return "pruned_dijkstra";
    case StrategyId::Kmb: return "kmb";
    case StrategyId::MulticastUb: return "multicast_ub";
    case StrategyId::AugmentedSources: return "augmented_sources";
    case StrategyId::ReducedBroadcast: return "reduced_broadcast";
    case StrategyId::AugmentedMulticast: return "augmented_multicast";
    case StrategyId::Exact: return "exact";
  }
  return "?";
}

/// All strategies in launch order: cheap and certain first, so tight
/// budgets still produce a certified answer.
inline std::vector<StrategyId> all_strategy_ids() {
  return {StrategyId::Mcph,
          StrategyId::PrunedDijkstra,
          StrategyId::Kmb,
          StrategyId::MulticastUb,
          StrategyId::AugmentedSources,
          StrategyId::ReducedBroadcast,
          StrategyId::AugmentedMulticast,
          StrategyId::Exact};
}

inline std::optional<StrategyId> strategy_id_from_name(std::string_view name) {
  for (StrategyId id : all_strategy_ids()) {
    if (name == strategy_id_name(id)) return id;
  }
  return std::nullopt;
}

/// How the portfolio may use cross-strategy incumbent bounds to cut work
/// (mirrors the runtime's PruningPolicy one-to-one; checked by a
/// static_assert in the Service implementation). Every cut is *sound* —
/// the pruned work provably could not have produced a better certified
/// period — so the response's period is the same under all three policies.
enum class PruningPolicy {
  Off = 0,        ///< blind-to-completion: run every allowed strategy
  Deterministic,  ///< staged race: pruning decisions read barrier-fenced
                  ///< snapshots only, so per-strategy outcomes are
                  ///< bit-identical across thread counts and the winner
                  ///< and period match Off exactly
  Aggressive,     ///< additionally consult live incumbents mid-solve:
                  ///< which dominated losers get cut may vary run to run,
                  ///< the certified winner's period never does
};

inline const char* pruning_policy_id_name(PruningPolicy policy) {
  switch (policy) {
    case PruningPolicy::Off: return "off";
    case PruningPolicy::Deterministic: return "deterministic";
    case PruningPolicy::Aggressive: return "aggressive";
  }
  return "?";
}

}  // namespace pmcast
