#pragma once
/// \file pmcast/core.hpp
/// Toolkit re-export: the paper's algorithm layer (LP bounds, tree and
/// LP-based heuristics, exact solvers, schedules, certificates, worked
/// examples). Unversioned — these names track the research code and may
/// change between minor releases; the stable serving surface is
/// pmcast/pmcast.hpp. See DESIGN_API.md.

#include "core/certificate.hpp"
#include "core/exact.hpp"
#include "core/flows.hpp"
#include "core/formulations.hpp"
#include "core/lp_heuristics.hpp"
#include "core/paper_examples.hpp"
#include "core/problem.hpp"
#include "core/tree.hpp"
#include "core/tree_heuristics.hpp"
