#pragma once
/// \file pmcast/setcover.hpp
/// Toolkit re-export: the set-cover reduction layer. Unversioned; see
/// DESIGN_API.md.

#include "setcover/reductions.hpp"
#include "setcover/setcover.hpp"
