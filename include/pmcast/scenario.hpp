#pragma once
/// \file pmcast/scenario.hpp
/// Toolkit re-export: the scenario subsystem — seeded multi-family
/// platform/workload generation and the differential verification oracle.
/// The Status-based entry points (validate_spec / generate_scenario
/// checked variant) live in the generator header. Unversioned; see
/// DESIGN_API.md.

#include "pmcast/status.hpp"
#include "scenario/generator.hpp"
#include "scenario/oracle.hpp"
