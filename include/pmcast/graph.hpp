#pragma once
/// \file pmcast/graph.hpp
/// Toolkit re-export: the graph layer — Digraph, shortest paths, DOT
/// export, canonical instance hashing, the platform text format (legacy
/// optional<>-based API; prefer pmcast/io.hpp) and the seeded RNG.
/// Unversioned; see DESIGN_API.md.

#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "graph/hash.hpp"
#include "graph/io.hpp"
#include "graph/paths.hpp"
#include "graph/rng.hpp"
