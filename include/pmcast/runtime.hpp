#pragma once
/// \file pmcast/runtime.hpp
/// Toolkit re-export: the concurrent solver-portfolio runtime (thread
/// pool, budgets, portfolio racing, result cache, PortfolioEngine).
/// Most applications should use the pmcast::Service facade
/// (pmcast/service.hpp) instead; this header is for code that needs
/// engine-level control. Unversioned; see DESIGN_API.md.

#include "runtime/runtime.hpp"
