#pragma once
/// \file pmcast/client.hpp
/// Toolkit re-export: the blocking remote client for the pmcast daemon.
/// A pmcast::net::Client turns a SolveRequest into one cheap binary
/// round-trip against a resident pmcast_serve process — the thin-client
/// half of the daemon split (hot state lives server-side, nothing is
/// reloaded per process). Unversioned; see DESIGN_SERVER.md.

#include "net/client.hpp"
#include "net/protocol.hpp"
