#pragma once
/// \file pmcast/response.hpp
/// SolveResponse — what the Service returns for a certified request: the
/// best certified period, the winning strategy, a certificate summary,
/// per-strategy outcomes, cache/coalescing provenance and timing.
///
/// A SolveResponse only exists for requests that produced a certified
/// answer; failures travel as Status (see pmcast/status.hpp), so a
/// response's period is always backed by a validated schedule/certificate.
///
/// This header is self-contained apart from pmcast/strategy.hpp.

#include <limits>
#include <string>
#include <vector>

#include "pmcast/strategy.hpp"

namespace pmcast {

enum class OutcomeState {
  Certified,  ///< period realised as a schedule and validated
  Failed,     ///< strategy did not produce a certifiable result
  Skipped,    ///< budget/deadline/cancellation or inapplicable
  Pruned,     ///< cooperatively cut: provably could not beat the winner
              ///< (dominated by the incumbent, or the incumbent already
              ///< met the proven lower bound). Never a failure — and never
              ///< reported for the winning strategy.
};

inline const char* outcome_state_name(OutcomeState state) {
  switch (state) {
    case OutcomeState::Certified: return "certified";
    case OutcomeState::Failed: return "failed";
    case OutcomeState::Skipped: return "skipped";
    case OutcomeState::Pruned: return "pruned";
  }
  return "?";
}

/// Counters for a strategy's LP solve sequence. The LP refinement
/// strategies (augmented_sources, reduced_broadcast, augmented_multicast)
/// re-solve one mutated program per probe, warm-starting from the previous
/// basis where possible; these counters expose how well that worked.
/// multicast_ub and exact report their single LP solve; all-zero for the
/// tree heuristics, which solve none.
struct LpStats {
  int solves = 0;          ///< LP solves run by the strategy
  int warm_starts = 0;     ///< solves warm-started from a previous basis
  int eta_reuses = 0;      ///< warm starts that also kept the factorisation
  int cold_fallbacks = 0;  ///< warm attempts re-run cold after a failure
  long long iterations = 0;///< total simplex iterations

  double warm_hit_rate() const {
    return solves > 0 ? static_cast<double>(warm_starts) / solves : 0.0;
  }
};

/// Per-strategy cooperative-pruning counters (see PruningPolicy).
struct PruneCounters {
  int probes_skipped = 0;  ///< heuristic probes not run after a cut
  int cutoff_aborts = 0;   ///< LP solves stopped mid-flight by a checkpoint
};

/// One strategy's result inside the portfolio race.
struct StrategyOutcome {
  StrategyId strategy = StrategyId::Mcph;
  OutcomeState state = OutcomeState::Skipped;
  /// Certified period (infinity unless state == Certified).
  double period = std::numeric_limits<double>::infinity();
  /// The strategy's own claimed/advisory value (e.g. Broadcast-EB bound).
  double bound_period = std::numeric_limits<double>::infinity();
  double elapsed_ms = 0.0;
  LpStats lp;          ///< LP sequence counters (see LpStats)
  PruneCounters prune; ///< cooperative-pruning counters
  std::string detail;  ///< failure reason / certification note
};

/// How the winning period was proven.
struct CertificateSummary {
  int certified = 0;  ///< strategies whose answer passed the proof pipeline
  int failed = 0;
  int skipped = 0;    ///< budget/deadline/cancellation or inapplicable
  int pruned = 0;     ///< cooperatively cut (not counted under skipped)
  std::string winner_detail;  ///< certification note of the winner, if any
};

/// Request-level cooperative-pruning summary.
struct PruningSummary {
  int strategies_pruned = 0;   ///< strategies cut as dominated
  int early_win_cancels = 0;   ///< strategies cut by the early-win signal
  int probes_skipped = 0;      ///< heuristic probes not run
  int cutoff_aborts = 0;       ///< LP solves stopped by a cutoff checkpoint
  /// Simplex iterations spent proving the Multicast-LB lower bound (the
  /// one extra LP a pruning race pays; 0 when pruning is off).
  long long lb_probe_iterations = 0;
  /// Best proven lower bound on the achievable period (0 = none). The
  /// certified period is always >= this value.
  double proven_lower_bound = 0.0;
};

/// Where the answer came from.
struct Provenance {
  bool from_cache = false;  ///< served from the service's LRU result cache
  bool coalesced = false;   ///< duplicate within a batch, copied from the
                            ///< leader request's result
};

struct Timing {
  double solve_ms = 0.0;  ///< portfolio wall time (0 for pure cache hits)
  double total_ms = 0.0;  ///< submit-to-delivery, includes queueing
};

struct SolveResponse {
  /// Best certified steady-state period (time per multicast).
  double period = std::numeric_limits<double>::infinity();
  StrategyId winner = StrategyId::Mcph;
  std::vector<StrategyOutcome> outcomes;  ///< indexed by launch order
  CertificateSummary certificate;
  PruningSummary pruning;
  Provenance provenance;
  Timing timing;

  double throughput() const { return period > 0.0 ? 1.0 / period : 0.0; }
};

}  // namespace pmcast
