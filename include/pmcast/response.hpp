#pragma once
/// \file pmcast/response.hpp
/// SolveResponse — what the Service returns for a certified request: the
/// best certified period, the winning strategy, a certificate summary,
/// per-strategy outcomes, cache/coalescing provenance and timing.
///
/// A SolveResponse only exists for requests that produced a certified
/// answer; failures travel as Status (see pmcast/status.hpp), so a
/// response's period is always backed by a validated schedule/certificate.
///
/// This header is self-contained apart from pmcast/strategy.hpp.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "pmcast/strategy.hpp"

namespace pmcast {

enum class OutcomeState {
  Certified,  ///< period realised as a schedule and validated
  Failed,     ///< strategy did not produce a certifiable result
  Skipped,    ///< budget/deadline/cancellation or inapplicable
  Pruned,     ///< cooperatively cut: provably could not beat the winner
              ///< (dominated by the incumbent, or the incumbent already
              ///< met the proven lower bound). Never a failure — and never
              ///< reported for the winning strategy.
};

inline const char* outcome_state_name(OutcomeState state) {
  switch (state) {
    case OutcomeState::Certified: return "certified";
    case OutcomeState::Failed: return "failed";
    case OutcomeState::Skipped: return "skipped";
    case OutcomeState::Pruned: return "pruned";
  }
  return "?";
}

/// Counters for a strategy's LP solve sequence. The LP refinement
/// strategies (augmented_sources, reduced_broadcast, augmented_multicast)
/// re-solve one mutated program per probe, warm-starting from the previous
/// basis where possible; these counters expose how well that worked.
/// multicast_ub and exact report their single LP solve; all-zero for the
/// tree heuristics, which solve none.
struct LpStats {
  int solves = 0;          ///< LP solves run by the strategy
  int warm_starts = 0;     ///< solves warm-started from a previous basis
  int eta_reuses = 0;      ///< warm starts that also kept the factorisation
  int cold_fallbacks = 0;  ///< warm attempts re-run cold after a failure
  long long iterations = 0;///< total simplex iterations

  // Column-generation counters, populated only when the exact strategy
  // runs its restricted-master pricing loop (instances above
  // exact_max_nodes but within colgen_max_nodes); all-zero otherwise.
  int columns_priced = 0;     ///< tree columns appended by the oracle
  int master_iterations = 0;  ///< restricted-master re-solves in the loop
  double pricing_ms = 0.0;    ///< wall-clock spent in the pricing oracle

  double warm_hit_rate() const {
    return solves > 0 ? static_cast<double>(warm_starts) / solves : 0.0;
  }
};

/// Per-strategy cooperative-pruning counters (see PruningPolicy).
struct PruneCounters {
  int probes_skipped = 0;  ///< heuristic probes not run after a cut
  int cutoff_aborts = 0;   ///< LP solves stopped mid-flight by a checkpoint
};

/// One strategy's result inside the portfolio race.
struct StrategyOutcome {
  StrategyId strategy = StrategyId::Mcph;
  OutcomeState state = OutcomeState::Skipped;
  /// Certified period (infinity unless state == Certified).
  double period = std::numeric_limits<double>::infinity();
  /// The strategy's own claimed/advisory value (e.g. Broadcast-EB bound).
  double bound_period = std::numeric_limits<double>::infinity();
  double elapsed_ms = 0.0;
  LpStats lp;          ///< LP sequence counters (see LpStats)
  PruneCounters prune; ///< cooperative-pruning counters
  std::string detail;  ///< failure reason / certification note
};

/// How the winning period was proven.
struct CertificateSummary {
  int certified = 0;  ///< strategies whose answer passed the proof pipeline
  int failed = 0;
  int skipped = 0;    ///< budget/deadline/cancellation or inapplicable
  int pruned = 0;     ///< cooperatively cut (not counted under skipped)
  std::string winner_detail;  ///< certification note of the winner, if any
};

/// Request-level cooperative-pruning summary.
struct PruningSummary {
  int strategies_pruned = 0;   ///< strategies cut as dominated
  int early_win_cancels = 0;   ///< strategies cut by the early-win signal
  int probes_skipped = 0;      ///< heuristic probes not run
  int cutoff_aborts = 0;       ///< LP solves stopped by a cutoff checkpoint
  /// Simplex iterations spent proving the Multicast-LB lower bound (the
  /// one extra LP a pruning race pays; 0 when pruning is off).
  long long lb_probe_iterations = 0;
  /// Best proven lower bound on the achievable period (0 = none). The
  /// certified period is >= this value up to floating-point dust in the
  /// LP objective evaluation (a certified period *equal* to the bound is
  /// the early-win signal that stops the race).
  double proven_lower_bound = 0.0;
};

/// Tracing/profiling detail level (ServiceOptions::trace).
enum class TraceDetail {
  Off = 0,       ///< record nothing: no clocks, no atomics, no allocations
  Counters = 1,  ///< cut-predicate accounting + LP checkpoint latency
  Timeline = 2,  ///< Counters plus per-strategy event timelines
};

inline const char* trace_detail_name(TraceDetail detail) {
  switch (detail) {
    case TraceDetail::Off: return "off";
    case TraceDetail::Counters: return "counters";
    case TraceDetail::Timeline: return "timeline";
  }
  return "?";
}

/// Timeline event kinds (SolveTrace::timeline, Timeline detail only).
enum class TraceEventKind {
  Launch = 0,             ///< strategy task started executing
  FirstLpCheckpoint = 1,  ///< first in-LP budget checkpoint of the strategy
  Certified = 2,          ///< strategy certified a period (event value)
  Pruned = 3,             ///< strategy cooperatively cut
  Skipped = 4,            ///< strategy never ran usefully (budget, filter)
  Failed = 5,             ///< strategy finished without a certificate
};

inline const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::Launch: return "launch";
    case TraceEventKind::FirstLpCheckpoint: return "first_lp_checkpoint";
    case TraceEventKind::Certified: return "certified";
    case TraceEventKind::Pruned: return "pruned";
    case TraceEventKind::Skipped: return "skipped";
    case TraceEventKind::Failed: return "failed";
  }
  return "?";
}

/// Accounting for one cut predicate of the cooperative-pruning race.
struct CutPredicateTrace {
  std::uint64_t evaluated = 0;  ///< times the predicate was checked
  std::uint64_t hits = 0;       ///< times it fired (work was cut)
  /// Smallest finite margin by which the predicate missed — "how close it
  /// came to firing", in period units. Infinity when every evaluation hit
  /// or no finite margin was observed. This is the field that diagnoses a
  /// dead cut: a counter stuck at 0 hits with misses clustering at some
  /// tiny epsilon means the predicate is off by exactly that epsilon.
  double closest_miss = std::numeric_limits<double>::infinity();

  std::uint64_t misses() const { return evaluated - hits; }
};

/// One entry of the per-strategy event timeline (Timeline detail).
struct TraceTimelineEvent {
  TraceEventKind kind = TraceEventKind::Launch;
  StrategyId strategy = StrategyId::Mcph;
  int slot = 0;               ///< launch index within the race
  std::uint32_t thread = 0;   ///< hashed thread id (stable within a race)
  double t_us = 0.0;          ///< microseconds since the race started
  /// Kind-specific payload: certified period for Certified, advisory bound
  /// for Pruned/Skipped/Failed when one exists, else 0.
  double value = 0.0;
};

/// What the tracing/profiling layer recorded for this solve (see
/// ServiceOptions::trace; detail == Off means everything here is empty).
/// Cache hits return the trace of the originating solve — check
/// Provenance::from_cache before attributing its cost to this request.
struct SolveTrace {
  TraceDetail detail = TraceDetail::Off;

  // Cut-predicate accounting (Counters and above).
  CutPredicateTrace sub_scatter;      ///< start-of-strategy scatter dominance
  CutPredicateTrace early_win;        ///< incumbent met the proven LB
  CutPredicateTrace probe_poll;       ///< between-probe polls (dominance,
                                      ///< abort and LB-convergence cuts)
  CutPredicateTrace reconstruct_skip; ///< multicast_ub reconstruction skip

  /// LP checkpoint latency histogram: bucket 0 counts gaps below 1us,
  /// bucket i counts gaps in [2^(i-1), 2^i) us, the last bucket absorbs
  /// the tail. Empty when detail == Off.
  std::vector<std::uint64_t> checkpoint_hist;
  std::uint64_t checkpoint_polls = 0;
  double checkpoint_total_us = 0.0;
  double checkpoint_max_us = 0.0;

  /// Per-strategy event timeline, sorted by timestamp (Timeline detail).
  std::vector<TraceTimelineEvent> timeline;

  double checkpoint_mean_us() const {
    return checkpoint_polls == 0
               ? 0.0
               : checkpoint_total_us / static_cast<double>(checkpoint_polls);
  }
};

/// Where the answer came from.
struct Provenance {
  bool from_cache = false;  ///< served from the service's LRU result cache
  bool coalesced = false;   ///< duplicate within a batch, copied from the
                            ///< leader request's result
};

struct Timing {
  double solve_ms = 0.0;  ///< portfolio wall time (0 for pure cache hits)
  double total_ms = 0.0;  ///< submit-to-delivery, includes queueing
};

struct SolveResponse {
  /// Best certified steady-state period (time per multicast).
  double period = std::numeric_limits<double>::infinity();
  StrategyId winner = StrategyId::Mcph;
  std::vector<StrategyOutcome> outcomes;  ///< indexed by launch order
  CertificateSummary certificate;
  PruningSummary pruning;
  SolveTrace trace;
  Provenance provenance;
  Timing timing;

  double throughput() const { return period > 0.0 ? 1.0 / period : 0.0; }
};

}  // namespace pmcast
