#pragma once
/// \file pmcast/prefix.hpp
/// Toolkit re-export: the prefix-multicast pipeline reduction.
/// Unversioned; see DESIGN_API.md.

#include "prefix/prefix.hpp"
