#pragma once
/// \file pmcast/io.hpp
/// Platform text format I/O with the v1 Status/Result error model: every
/// diagnostic carries file, 1-based line/column and the offending token.
///
///   Result<PlatformFile> p = pmcast::load_platform("net.platform");
///   if (!p.ok()) die(p.status().to_string());
///   // "net.platform:7:12: edge cost must be finite and > 0 (near '-3')
///   //  [parse_error]"
///
/// The format itself (nodes/name/edge/link/source/target directives) is
/// documented in the header this one re-exports.

#include "graph/io.hpp"
#include "pmcast/status.hpp"
