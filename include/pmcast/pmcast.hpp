#pragma once
/// \file pmcast/pmcast.hpp
/// Umbrella header of the pmcast v1 public API — the stable, versioned
/// entry point for applications, tools, benches and tests.
///
/// Five-line tour:
///   pmcast::Service service({.threads = 8});
///   auto platform = pmcast::load_platform("net.platform");       // Result<>
///   pmcast::SolveRequest req{.problem = platform->problem()...};
///   auto response = service.solve(req);                          // Result<>
///   if (response.ok()) use(response->period);  // certificate-validated
///
/// Surface map:
///   pmcast/status.hpp    — Status / Result<T> error model
///   pmcast/problem.hpp   — Problem (+ validated make_problem factory)
///   pmcast/io.hpp        — platform text I/O with line/column diagnostics
///   pmcast/strategy.hpp  — StrategyId identifiers
///   pmcast/request.hpp   — SolveRequest (deadline, limits, priority,
///                          cancellation, strategy allowlist)
///   pmcast/response.hpp  — SolveResponse (certificate summary, outcomes,
///                          provenance, timing)
///   pmcast/service.hpp   — Service facade, SolveFuture, SolveBatch
///   pmcast/version.hpp   — PMCAST_API_VERSION
///
/// The algorithm toolkit (LP bounds, tree heuristics, schedules,
/// simulator, scenario generator, ...) is re-exported unversioned through
/// pmcast/core.hpp, pmcast/graph.hpp, pmcast/runtime.hpp,
/// pmcast/scenario.hpp and friends; see DESIGN_API.md for the stability
/// contract of each layer.

#include "pmcast/io.hpp"
#include "pmcast/problem.hpp"
#include "pmcast/request.hpp"
#include "pmcast/response.hpp"
#include "pmcast/service.hpp"
#include "pmcast/status.hpp"
#include "pmcast/strategy.hpp"
#include "pmcast/version.hpp"
