#pragma once
/// \file pmcast/problem.hpp
/// The problem type of the v1 API. `pmcast::Problem` is the library's
/// core::MulticastProblem (platform digraph + source + target set) — the
/// facade shares the value type with the algorithm layer so toolkit calls
/// and Service requests interoperate without conversions.
///
/// Prefer make_problem() over constructing the type directly: the raw
/// constructor asserts on bad ids in debug builds and silently accepts
/// them in release builds, while make_problem() reports a Status.

#include <string>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "pmcast/status.hpp"

namespace pmcast {

using Problem = core::MulticastProblem;

/// Structural validation shared by make_problem() and Service::submit():
/// ids in range, source not a target, no duplicate targets, at least one
/// target. Does not check reachability (see Problem::feasible()).
inline Status validate_problem(const Digraph& graph, NodeId source,
                               const std::vector<NodeId>& targets) {
  const int n = graph.node_count();
  if (n <= 0) {
    return Status(StatusCode::kInvalidArgument, "platform graph is empty");
  }
  if (source < 0 || source >= n) {
    return Status(StatusCode::kInvalidArgument,
                  "source id " + std::to_string(source) +
                      " out of range [0, " + std::to_string(n) + ")");
  }
  if (targets.empty()) {
    return Status(StatusCode::kInvalidArgument, "target set is empty");
  }
  std::vector<char> seen(static_cast<size_t>(n), 0);
  for (NodeId t : targets) {
    if (t < 0 || t >= n) {
      return Status(StatusCode::kInvalidArgument,
                    "target id " + std::to_string(t) + " out of range [0, " +
                        std::to_string(n) + ")");
    }
    if (t == source) {
      return Status(StatusCode::kInvalidArgument,
                    "the source cannot be a target (node " +
                        std::to_string(t) + ")");
    }
    if (seen[static_cast<size_t>(t)]) {
      return Status(StatusCode::kInvalidArgument,
                    "duplicate target " + std::to_string(t));
    }
    seen[static_cast<size_t>(t)] = 1;
  }
  return Status::Ok();
}

inline Status validate_problem(const Problem& problem) {
  return validate_problem(problem.graph, problem.source, problem.targets);
}

/// Validated Problem factory: never asserts, reports kInvalidArgument with
/// the offending id instead.
inline Result<Problem> make_problem(Digraph graph, NodeId source,
                                    std::vector<NodeId> targets) {
  Status status = validate_problem(graph, source, targets);
  if (!status.ok()) return status;
  return Problem(std::move(graph), source, std::move(targets));
}

}  // namespace pmcast
