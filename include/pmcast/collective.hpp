#pragma once
/// \file pmcast/collective.hpp
/// Toolkit re-export: the collective-operation extensions. Unversioned;
/// see DESIGN_API.md.

#include "collective/collective.hpp"
