#pragma once
/// \file pmcast/service.hpp
/// pmcast::Service — the async-first v1 facade over the concurrent solver
/// portfolio. One Service owns a work-stealing worker pool and an LRU
/// result cache; requests carry their own deadline, budget, priority,
/// cancellation and strategy allowlist (pmcast/request.hpp).
///
/// Submission model:
///  * solve()        — blocking convenience for one request;
///  * submit()       — returns a SolveFuture immediately;
///  * submit_batch() — streams each Result<SolveResponse> through the
///    optional on_result callback *as it certifies* instead of holding the
///    whole batch until the slowest straggler finishes; the returned
///    SolveBatch handle offers wait_all()/cancel()/get(i).
///
/// Callback contract: callbacks are serialized (never concurrent with each
/// other) and may run on worker threads or, for cache hits and invalid
/// requests, on the submitting thread before submit_batch() returns. A
/// callback must not block on its own batch's handle. Delivery *order*
/// across requests is completion order — nondeterministic under > 1
/// worker — but the content of every response is deterministic: a request
/// is a pure function of its instance, independent of thread count.
///
/// The Service is pimpl'd: this header pulls in no runtime internals, and
/// future transports (sockets, shared memory) can reuse the same
/// request/response surface without a breaking change.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "pmcast/request.hpp"
#include "pmcast/response.hpp"
#include "pmcast/status.hpp"

namespace pmcast {

namespace detail {
struct BatchState;  // defined in src/api/service.cpp
}

struct ServiceOptions {
  /// Worker threads. 0 = no workers: everything (including submit() /
  /// submit_batch()) runs inline on the calling thread in deterministic
  /// order — the debugging mode.
  int threads = 1;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Default wall-clock deadline per request in ms; 0 = unlimited.
  /// Individual requests override with SolveRequest::deadline_ms, or opt
  /// out of this default entirely with SolveRequest::kNoDeadline.
  double default_deadline_ms = 0.0;
  /// Default exact-solver limits (overridden by SolveRequest::limits).
  int exact_max_nodes = 9;
  std::size_t exact_max_trees = 200'000;
  /// Default column-generation ceiling for the exact strategy: instances
  /// in (exact_max_nodes, colgen_max_nodes] use the restricted-master
  /// pricing loop. 0 (the default) disables column generation, keeping
  /// the portfolio's certified results identical to the
  /// enumeration-only engine.
  int colgen_max_nodes = 0;
  /// Extra discrete-event replay periods for tree certificates.
  int simulate_periods = 0;
  /// Default strategy portfolio; empty = all strategies.
  std::vector<StrategyId> strategies;
  /// Default cooperative-pruning policy (overridable per request). Pruning
  /// cuts work that provably cannot beat the winner; the certified period
  /// is identical under every policy, and Deterministic keeps even the
  /// per-strategy outcomes bit-identical across thread counts.
  PruningPolicy pruning = PruningPolicy::Deterministic;
  /// Tracing/profiling detail recorded into every SolveResponse::trace
  /// (and the service-wide aggregate_trace()). Counters — cut-predicate
  /// accounting and LP checkpoint latency histograms, a couple of relaxed
  /// atomic bumps per record — is cheap enough to stay on in production;
  /// Timeline additionally records per-strategy event timelines; Off
  /// removes the layer entirely (zero allocations, zero clock reads).
  TraceDetail trace = TraceDetail::Counters;
};

/// Cumulative result-cache counters (mirror of the runtime's CacheStats).
struct CacheMetrics {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  /// Shard count the cache runs with (auto-scaled to hardware_concurrency
  /// unless configured explicitly).
  std::size_t shards = 1;
  /// Per-shard heat (index == shard id): how evenly the canonical-key hash
  /// spreads traffic, and which shards carry the hot entries.
  struct ShardHeat {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
  };
  std::vector<ShardHeat> shard_heat;

  double hit_rate() const {
    std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Handle to one in-flight request. Copyable; all copies share the state.
class SolveFuture {
 public:
  SolveFuture() = default;

  /// False for a default-constructed future.
  bool valid() const { return state_ != nullptr; }
  /// True once the response (or error status) is available.
  bool ready() const;
  void wait() const;
  /// Wait up to \p timeout_ms; true iff ready. Requires valid().
  bool wait_for(double timeout_ms) const;
  /// Block until done and return the result (copy; repeatable).
  Result<SolveResponse> get() const;
  /// Cooperatively cancel this request.
  void cancel();

 private:
  friend class Service;
  friend class SolveBatch;
  SolveFuture(std::shared_ptr<detail::BatchState> state, std::size_t index)
      : state_(std::move(state)), index_(index) {}

  std::shared_ptr<detail::BatchState> state_;
  std::size_t index_ = 0;
};

/// Handle to an in-flight batch. Copyable; all copies share the state.
class SolveBatch {
 public:
  SolveBatch() = default;

  bool valid() const { return state_ != nullptr; }
  std::size_t size() const;
  /// Responses delivered so far (callback-visible or get()-able).
  std::size_t completed() const;
  bool done() const;
  /// Block until every request has been delivered (and, when an on_result
  /// callback was installed, until every callback has returned).
  void wait_all();
  /// Wait up to \p timeout_ms; true iff the batch completed.
  bool wait_all_for(double timeout_ms);
  /// Cooperatively cancel the whole batch: not-yet-started strategies
  /// skip, started strategies stop at their next checkpoint (between LP
  /// probes or mid-solve), already-delivered responses stay valid.
  void cancel();
  bool ready(std::size_t index) const;
  /// Block until request \p index is delivered and return its result.
  Result<SolveResponse> get(std::size_t index) const;
  /// Per-request future sharing this batch's state.
  SolveFuture future(std::size_t index) const;

 private:
  friend class Service;
  explicit SolveBatch(std::shared_ptr<detail::BatchState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::BatchState> state_;
};

/// Streaming delivery: invoked once per request, in completion order, with
/// the request's index in the submitted batch.
using ResultCallback =
    std::function<void(std::size_t index, const Result<SolveResponse>&)>;

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(Service&&) noexcept;
  Service& operator=(Service&&) noexcept;
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Blocking convenience: submit one request and wait for its result.
  Result<SolveResponse> solve(const SolveRequest& request);

  /// Async single submission; returns immediately (with 0 worker threads
  /// the request is solved inline before returning, and the future is
  /// already ready).
  SolveFuture submit(SolveRequest request);

  /// Async batch submission with streaming delivery. Each request's
  /// Result<SolveResponse> is passed to \p on_result as it certifies;
  /// cache hits and invalid requests are delivered before this returns.
  SolveBatch submit_batch(std::vector<SolveRequest> requests,
                          ResultCallback on_result = {});

  /// Blocking batch: submit, wait for everything, return results aligned
  /// index-for-index with \p requests.
  std::vector<Result<SolveResponse>> solve_batch(
      std::vector<SolveRequest> requests);

  CacheMetrics cache_metrics() const;
  /// Cumulative trace merged over every solve this service has finished
  /// (counters only; timelines stay on the individual responses). The
  /// profiling view a daemon exports — see the kTraceRequest wire frame.
  SolveTrace aggregate_trace() const;
  void clear_cache();
  int thread_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pmcast
