#pragma once
/// \file pmcast/request.hpp
/// SolveRequest — the one per-request envelope of the v1 API. Everything
/// that used to be scattered across runtime::RequestOptions (deadline,
/// cancellation) and runtime::SolveBudget (deadline again, exact-solver
/// limits) plus the previously engine-global strategy set is folded into
/// this single type; budgets, priorities and strategy routing are request
/// attributes, not engine knobs.

#include <optional>
#include <vector>

#include "pmcast/problem.hpp"
#include "pmcast/strategy.hpp"
#include "runtime/budget.hpp"

namespace pmcast {

/// Cooperative cancellation flag. Copyable; every copy shares the same
/// flag, so the caller keeps one and hands the other to the request.
using CancelToken = runtime::CancellationToken;

/// Limits on the expensive exact enumeration strategy. Sentinels inherit
/// the service defaults (ServiceOptions::exact_max_nodes/_max_trees).
struct SolveLimits {
  int exact_max_nodes = -1;         ///< < 0 inherits the service default
  std::size_t exact_max_trees = 0;  ///< 0 inherits the service default
  /// Column-generation ceiling: instances above exact_max_nodes but at
  /// most this many nodes solve the exact strategy via the restricted
  /// master + pricing oracle instead of skipping. < 0 inherits the
  /// service default (which is 0 = disabled). In-process knob only — the
  /// wire protocol does not carry it, so remote requests always use the
  /// server's configured default.
  int colgen_max_nodes = -1;
};

struct SolveRequest {
  /// Explicit "no deadline": a request carrying this sentinel runs
  /// unlimited even when ServiceOptions::default_deadline_ms is set (0
  /// would inherit that default instead).
  static constexpr double kNoDeadline = runtime::SolveBudget::kNoDeadline;

  Problem problem;

  /// Wall-clock deadline in ms, anchored when the request enters the
  /// service; 0 inherits ServiceOptions::default_deadline_ms, kNoDeadline
  /// (negative) opts out of any deadline. Enforced cooperatively at
  /// checkpoint granularity: a started strategy stops between LP probes
  /// or every few dozen simplex iterations inside a solve, so expiry
  /// surfaces within one checkpoint interval.
  double deadline_ms = 0.0;

  SolveLimits limits;

  /// Higher-priority requests are dispatched to the worker pool first
  /// within a batch. Ties keep submission order.
  int priority = 0;

  /// Strategy allowlist; empty inherits the service portfolio (all
  /// strategies by default). Routing cheap-vs-expensive per request is
  /// done here: e.g. {Mcph, MulticastUb} for latency-critical traffic.
  std::vector<StrategyId> strategies;

  /// Cooperative cancellation: request_stop() makes not-yet-started
  /// strategies of this request skip; finished work stays valid.
  CancelToken cancel;

  /// Cooperative-pruning override; nullopt inherits ServiceOptions::
  /// pruning. Pruning never changes the certified period — it only stops
  /// work that provably cannot win (reported as OutcomeState::Pruned).
  std::optional<PruningPolicy> pruning;

  /// Caller-proven lower bound on any achievable period for this instance
  /// (0 = none). Must be a *sound* bound (e.g. a previously computed
  /// Multicast-LB value); it seeds the race's incumbent so the early-win
  /// cut can stop strategies the moment a candidate certifies at it.
  double known_lower_bound = 0.0;
};

}  // namespace pmcast
