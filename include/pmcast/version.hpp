#pragma once
/// \file pmcast/version.hpp
/// The pmcast v1 API version. Versioning policy (see DESIGN_API.md):
///  * MAJOR — breaking change to any `pmcast/*.hpp` name or semantic;
///  * MINOR — backwards-compatible additions to the v1 surface;
///  * PATCH — behaviour-preserving fixes.
/// The toolkit re-export headers (pmcast/core.hpp, pmcast/runtime.hpp, ...)
/// expose the algorithm layer as-is and are *not* covered by this contract.
///
/// Keep these three numbers in sync with project(pmcast VERSION ...) in the
/// top-level CMakeLists.txt; the install-tree test compares them.

// clang-format off
#define PMCAST_API_VERSION_MAJOR 1
#define PMCAST_API_VERSION_MINOR 0
#define PMCAST_API_VERSION_PATCH 0
#define PMCAST_API_VERSION "1.0.0"
// clang-format on

namespace pmcast {

inline constexpr int kApiVersionMajor = PMCAST_API_VERSION_MAJOR;
inline constexpr int kApiVersionMinor = PMCAST_API_VERSION_MINOR;
inline constexpr int kApiVersionPatch = PMCAST_API_VERSION_PATCH;

/// "MAJOR.MINOR.PATCH", e.g. "1.0.0".
inline const char* api_version() { return PMCAST_API_VERSION; }

}  // namespace pmcast
