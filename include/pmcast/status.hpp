#pragma once
/// \file pmcast/status.hpp
/// The v1 error model: an `expected`-style Status / Result<T> pair used at
/// every public boundary (platform parsing, scenario generation, the
/// Service facade). Replaces the throw-or-bool inconsistency of the
/// internal layers: public entry points never throw for anticipated
/// failures and never make the caller decode a bare bool.
///
/// Status carries a coarse machine-readable code, a human-readable message
/// and — for parse errors — a structured SourceLocation (file, 1-based
/// line/column, offending token) so tools can point at the exact byte.
///
/// This header is self-contained (standard library only).

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pmcast {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed request (bad ids, empty target set...)
  kFailedPrecondition,  ///< structurally valid but unservable (unreachable
                        ///< target, infeasible instance)
  kParseError,          ///< malformed platform/spec text; location is set
  kNotFound,            ///< missing file or unknown name
  kDeadlineExceeded,    ///< budget expired before any strategy certified
  kCancelled,           ///< cooperative cancellation won the race
  kResourceExhausted,   ///< an explicit limit (tree enumeration...) was hit
  kUnavailable,         ///< transient: retrying the same request may work
  kInternal,            ///< invariant violation inside the library
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "?";
}

/// Where a diagnostic points. line/column are 1-based; 0 means unknown
/// (e.g. "missing source directive" belongs to the whole file).
struct SourceLocation {
  std::string file;   ///< path, or "<string>"/"<stream>" for in-memory text
  int line = 0;
  int column = 0;
  std::string token;  ///< the offending token, empty if not applicable
};

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  Status(StatusCode code, std::string message, SourceLocation location)
      : code_(code),
        message_(std::move(message)),
        location_(std::move(location)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::optional<SourceLocation>& location() const { return location_; }

  /// "file:line:col: message (near 'token') [code]"; parts that are unknown
  /// are omitted, so a location-free status renders as "message [code]".
  std::string to_string() const {
    if (ok()) return "ok";
    std::string out;
    if (location_ && !location_->file.empty()) {
      out += location_->file;
      if (location_->line > 0) {
        out += ':';
        out += std::to_string(location_->line);
        if (location_->column > 0) {
          out += ':';
          out += std::to_string(location_->column);
        }
      }
      out += ": ";
    }
    out += message_;
    if (location_ && !location_->token.empty()) {
      out += " (near '" + location_->token + "')";
    }
    out += " [";
    out += status_code_name(code_);
    out += ']';
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::optional<SourceLocation> location_;
};

/// Value-or-Status, the return type of every fallible public entry point.
/// Implicitly constructible from either side:
///
///   Result<PlatformFile> r = load_platform(path);
///   if (!r.ok()) { log(r.status().to_string()); return; }
///   use(r.value());   // or *r / r->graph
template <typename T>
class [[nodiscard]] Result {
 public:
  /// An error Result. Passing an OK status is a programming error; it is
  /// coerced to kInternal so the Result is never "ok but valueless".
  Result(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "Result constructed from an OK status without a value");
    }
  }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(implicit)

  bool ok() const { return status_.ok(); }
  explicit operator bool() const { return ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Asserts in debug builds.
  T& value() & { assert(ok()); return *value_; }
  const T& value() const& { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return std::move(*value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pmcast
