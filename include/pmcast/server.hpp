#pragma once
/// \file pmcast/server.hpp
/// Toolkit re-export: the pmcast-serve resident daemon — an epoll socket
/// server over pmcast::Service with a binary wire protocol, per-tenant
/// admission control and graceful SIGTERM drain. Embed it to host the
/// portfolio engine as a long-lived network service (tools/pmcast_serve is
/// the stock daemon binary). Unversioned; see DESIGN_SERVER.md.

#include "net/faultpoint.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
