/// \file find_gap_instance.cpp
/// Randomised search for Figure-4-style platforms where neither LP bound is
/// tight, i.e. throughput(UB) < optimum < throughput(LB) strictly. The
/// instance baked into core::figure4_example() was found by this tool with
/// seed 4242 (an exact match of the paper's 2/3 / 1/2 / 1/3 values).
///
/// Usage:  find_gap_instance [seed] [iterations] [--exact-paper-values]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pmcast/core.hpp"
#include "pmcast/graph.hpp"

using namespace pmcast;
using namespace pmcast::core;

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4242;
  int iterations = argc > 2 ? std::atoi(argv[2]) : 100000;
  bool exact_values = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--exact-paper-values") == 0) exact_values = true;
  }

  Rng rng(seed);
  int found = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    int n = 4 + static_cast<int>(rng.uniform(3));  // 4..6 nodes
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.4)) {
          g.add_edge(u, v, rng.uniform(2) != 0u ? 0.5 : 1.0);
        }
      }
    }
    std::vector<NodeId> targets;
    for (int v = 1; v < n; ++v) {
      if (rng.bernoulli(0.55)) targets.push_back(v);
    }
    if (targets.size() < 2) continue;
    MulticastProblem problem(g, 0, targets);
    if (!problem.feasible()) continue;

    FlowSolution lb = solve_multicast_lb(problem);
    FlowSolution ub = solve_multicast_ub(problem);
    if (!lb.ok() || !ub.ok()) continue;
    ExactSolution exact = exact_optimal_throughput(problem);
    if (!exact.ok) continue;
    double t_lb = 1.0 / lb.period;
    double t_ub = 1.0 / ub.period;
    double opt = exact.throughput;

    bool hit;
    if (exact_values) {
      hit = std::fabs(t_lb - 2.0 / 3.0) < 1e-6 &&
            std::fabs(opt - 0.5) < 1e-6 && std::fabs(t_ub - 1.0 / 3.0) < 1e-6;
    } else {
      hit = t_lb > opt * 1.1 && opt > t_ub * 1.1;
    }
    if (!hit) continue;

    std::printf("iter %d: n=%d |E|=%d  LB=%.4f OPT=%.4f UB=%.4f\n  targets:",
                iter, n, g.edge_count(), t_lb, opt, t_ub);
    for (NodeId t : targets) std::printf(" %d", t);
    std::printf("\n  edges:");
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      std::printf(" (%d->%d,%g)", g.edge(e).from, g.edge(e).to,
                  g.edge(e).cost);
    }
    std::printf("\n");
    if (++found >= 3) return 0;
  }
  std::printf("%d instance(s) found in %d iterations\n", found, iterations);
  return found > 0 ? 0 : 1;
}
