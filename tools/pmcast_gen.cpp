/// \file pmcast_gen.cpp
/// Scenario generator CLI: emit a seeded platform/workload instance in the
/// graph/io.hpp text format (consumable by examples/pmcast_cli and
/// read_platform), optionally cross-checking it with the differential
/// oracle first.
///
/// Usage:
///   pmcast_gen --family grid --nodes 16 --seed 7 --density 0.5
///              --policy leaf_biased [--torus] [--degrade-fraction 0.15]
///              [--degrade-factor 6] [--attach 2] [--clusters 4]
///              [--radius 0.4] [--core-cost 40:120] [--leaf-cost 10:40]
///              [--out FILE] [--check]
///   pmcast_gen --list
///
/// Exit codes: 0 ok, 1 bad arguments, 2 oracle violation (--check).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "pmcast/io.hpp"
#include "pmcast/scenario.hpp"

using namespace pmcast;
using namespace pmcast::scenario;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "pmcast_gen — seeded multi-family platform/workload generator\n"
      "\n"
      "  --family NAME        tiers | fat_tree | power_law | grid | star |\n"
      "                       geometric (required unless --list)\n"
      "  --nodes N            total node budget (default 16, min 4)\n"
      "  --seed S             64-bit seed (default 1)\n"
      "  --density D          target fraction of the policy pool (default 0.5)\n"
      "  --policy NAME        uniform | leaf_biased | hotspot (default uniform)\n"
      "  --torus              grid only: wrap rows/columns\n"
      "  --degrade-fraction F fraction of degraded links (default 0)\n"
      "  --degrade-factor X   cost multiplier on degraded links (default 4)\n"
      "  --attach M           power_law only: links per new node (default 2)\n"
      "  --clusters C         star only: cluster count (default 4)\n"
      "  --radius R           geometric only: link radius, 0 = auto\n"
      "  --core-cost LO:HI    core link cost range (default 40:120)\n"
      "  --leaf-cost LO:HI    leaf link cost range (default 10:40)\n"
      "  --out FILE           write the platform file here (default stdout)\n"
      "  --check              run the differential oracle; exit 2 on violation\n"
      "  --list               list families and target policies\n");
}

bool parse_range(const char* text, double* lo, double* hi) {
  const char* colon = std::strchr(text, ':');
  if (colon == nullptr) return false;
  char* end = nullptr;
  *lo = std::strtod(text, &end);
  if (end != colon) return false;
  *hi = std::strtod(colon + 1, &end);
  return *end == '\0' && *lo > 0.0 && *hi >= *lo;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioSpec spec;
  spec.policy = TargetPolicy::Uniform;
  bool have_family = false;
  bool check = false;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      std::printf("families:");
      for (Family f : all_families()) std::printf(" %s", family_name(f));
      std::printf("\npolicies: uniform leaf_biased hotspot\n");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--family") {
      auto f = family_from_name(value());
      if (!f) {
        std::fprintf(stderr, "error: unknown family (try --list)\n");
        return 1;
      }
      spec.family = *f;
      have_family = true;
    } else if (arg == "--nodes") {
      spec.nodes = std::atoi(value());
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--density") {
      spec.target_density = std::atof(value());
    } else if (arg == "--policy") {
      auto p = target_policy_from_name(value());
      if (!p) {
        std::fprintf(stderr, "error: unknown policy (try --list)\n");
        return 1;
      }
      spec.policy = *p;
    } else if (arg == "--torus") {
      spec.torus = true;
    } else if (arg == "--degrade-fraction") {
      spec.costs.degrade_fraction = std::atof(value());
    } else if (arg == "--degrade-factor") {
      spec.costs.degrade_factor = std::atof(value());
    } else if (arg == "--attach") {
      spec.power_law_attach = std::atoi(value());
    } else if (arg == "--clusters") {
      spec.star_clusters = std::atoi(value());
    } else if (arg == "--radius") {
      spec.geo_radius = std::atof(value());
    } else if (arg == "--core-cost") {
      if (!parse_range(value(), &spec.costs.core_lo, &spec.costs.core_hi)) {
        std::fprintf(stderr, "error: --core-cost needs LO:HI with 0<LO<=HI\n");
        return 1;
      }
    } else if (arg == "--leaf-cost") {
      if (!parse_range(value(), &spec.costs.leaf_lo, &spec.costs.leaf_hi)) {
        std::fprintf(stderr, "error: --leaf-cost needs LO:HI with 0<LO<=HI\n");
        return 1;
      }
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (!have_family) {
    usage();
    return 1;
  }

  // Spec validation is the library's job now (v1 Status error model):
  // one source of truth for knob domains instead of CLI-side reimplements.
  Result<ScenarioInstance> generated = generate_scenario_checked(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 generated.status().to_string().c_str());
    return 1;
  }
  ScenarioInstance instance = std::move(*generated);

  if (check) {
    OracleReport report = cross_check(instance.problem);
    std::fprintf(stderr, "oracle %s: %s\n", instance.name.c_str(),
                 report.summary().c_str());
    for (const OracleViolation& v : report.violations) {
      std::fprintf(stderr, "  violation [%s] %s\n", v.check.c_str(),
                   v.detail.c_str());
    }
    if (!report.ok) return 2;
  }

  std::ostringstream text;
  text << "# " << instance.name << " — generated by pmcast_gen\n"
       << "# family " << family_name(spec.family) << ", policy "
       << target_policy_name(spec.policy) << ", seed " << spec.seed << "\n";
  write_platform(text, to_platform_file(instance));

  if (out_path.empty()) {
    std::fputs(text.str().c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << text.str();
    std::fprintf(stderr, "wrote %s (%s)\n", out_path.c_str(),
                 instance.name.c_str());
  }
  return 0;
}
