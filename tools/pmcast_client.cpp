/// \file pmcast_client.cpp
/// Command-line client for a running pmcast_serve daemon: solve platform
/// files remotely over the binary wire protocol, or fetch the daemon's
/// counter snapshot.
///
/// Usage:
///   pmcast_client [--host H] [--port P] [--tenant T]
///                 [--deadline-ms MS | --no-deadline] [--stats] [--trace]
///                 [<platform-file>...]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pmcast/client.hpp"
#include "pmcast/pmcast.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--tenant T]\n"
               "          [--deadline-ms MS | --no-deadline] [--stats]\n"
               "          [--trace] [<platform-file>...]\n",
               argv0);
  return 2;
}

void print_stats(const pmcast::net::ServerWireStats& s) {
  std::printf("uptime              %.1f s\n", s.uptime_ms / 1000.0);
  std::printf("connections         %llu accepted, %llu open\n",
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.connections_open));
  std::printf("requests            %llu admitted (%llu brownout), "
              "%llu in flight\n",
              static_cast<unsigned long long>(s.requests_admitted),
              static_cast<unsigned long long>(s.brownout_admitted),
              static_cast<unsigned long long>(s.in_flight));
  std::printf("responses / errors  %llu / %llu\n",
              static_cast<unsigned long long>(s.responses_sent),
              static_cast<unsigned long long>(s.errors_sent));
  std::printf("shed                %llu (qps %llu, in-flight %llu, "
              "deadline %llu, shutdown %llu)\n",
              static_cast<unsigned long long>(s.total_shed()),
              static_cast<unsigned long long>(s.shed_qps),
              static_cast<unsigned long long>(s.shed_in_flight),
              static_cast<unsigned long long>(s.shed_deadline),
              static_cast<unsigned long long>(s.shed_shutdown));
  std::printf("protocol errors     %llu\n",
              static_cast<unsigned long long>(s.protocol_errors));
  std::printf("closed              %llu idle-timeout, %llu read-timeout, "
              "%llu backpressure\n",
              static_cast<unsigned long long>(s.closed_idle_timeout),
              static_cast<unsigned long long>(s.closed_read_timeout),
              static_cast<unsigned long long>(s.closed_backpressure));
  std::printf("faults injected     %llu\n",
              static_cast<unsigned long long>(s.faults_injected));
  std::printf("cache               %.0f%% hit rate (%llu hits / %llu "
              "misses), %llu entries, %u shard(s)\n",
              100.0 * s.cache_hit_rate(),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_misses),
              static_cast<unsigned long long>(s.cache_entries),
              static_cast<unsigned>(s.cache_shards));
  std::printf("workers             %u threads, EWMA solve %.1f ms\n",
              static_cast<unsigned>(s.worker_threads), s.ewma_solve_ms);
}

void print_predicate(const char* name,
                     const pmcast::net::WirePredicateTrace& p) {
  std::printf("  %-16s %llu evaluated, %llu hits", name,
              static_cast<unsigned long long>(p.evaluated),
              static_cast<unsigned long long>(p.hits));
  if (p.evaluated > p.hits && p.closest_miss < 1e300) {
    std::printf(", closest miss %.3g", p.closest_miss);
  }
  std::printf("\n");
}

void print_trace(const pmcast::net::ServerWireTrace& t) {
  std::printf("trace detail        %u\n", static_cast<unsigned>(t.detail));
  std::printf("cut predicates\n");
  print_predicate("sub_scatter", t.sub_scatter);
  print_predicate("early_win", t.early_win);
  print_predicate("probe_poll", t.probe_poll);
  print_predicate("reconstruct_skip", t.reconstruct_skip);
  std::printf("lp checkpoints      %llu polls, mean gap %.1f us, max %.1f us\n",
              static_cast<unsigned long long>(t.checkpoint_polls),
              t.checkpoint_mean_us(), t.checkpoint_max_us);
  if (t.checkpoint_polls > 0) {
    std::printf("  gap histogram    ");
    for (std::uint64_t b : t.checkpoint_hist) {
      std::printf(" %llu", static_cast<unsigned long long>(b));
    }
    std::printf("\n");
  }
  std::printf("cache shard heat    (hits/misses/evictions/entries)\n");
  for (std::size_t i = 0; i < t.shard_heat.size(); ++i) {
    const pmcast::net::WireShardHeat& s = t.shard_heat[i];
    std::printf("  shard %-2zu         %llu/%llu/%llu/%llu\n", i,
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.entries));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  pmcast::net::ClientOptions client_options;
  double deadline_ms = 0.0;
  bool no_deadline = false;
  bool want_stats = false;
  bool want_trace = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = next_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(
          std::strtoul(next_value("--port"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      client_options.tenant = static_cast<std::uint32_t>(
          std::strtoul(next_value("--tenant"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      deadline_ms = std::strtod(next_value("--deadline-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--no-deadline") == 0) {
      no_deadline = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      want_trace = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "%s: --port is required\n", argv[0]);
    return usage(argv[0]);
  }
  if (!want_stats && !want_trace && files.empty()) return usage(argv[0]);

  pmcast::Result<pmcast::net::Client> connected =
      pmcast::net::Client::connect(host, port, client_options);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().to_string().c_str());
    return 1;
  }
  pmcast::net::Client client = std::move(*connected);

  int failed = 0;
  for (const std::string& file : files) {
    pmcast::Result<pmcast::PlatformFile> parsed =
        pmcast::load_platform(file);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
      ++failed;
      continue;
    }
    pmcast::Result<pmcast::Problem> problem =
        pmcast::make_problem(std::move(parsed->graph), parsed->source,
                             std::move(parsed->targets));
    if (!problem.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   problem.status().to_string().c_str());
      ++failed;
      continue;
    }
    pmcast::SolveRequest request;
    request.problem = std::move(*problem);
    request.deadline_ms =
        no_deadline ? pmcast::SolveRequest::kNoDeadline : deadline_ms;
    pmcast::Result<pmcast::net::RemoteResponse> response =
        client.solve(request);
    if (!response.ok()) {
      std::printf("%s: %s\n", file.c_str(),
                  response.status().to_string().c_str());
      ++failed;
      continue;
    }
    std::printf("%s: period %.6g (throughput %.6g) via %s, %.1f ms "
                "server-side%s%s\n",
                file.c_str(), response->period, response->throughput(),
                pmcast::strategy_id_name(response->winner),
                response->total_ms,
                response->from_cache ? " [cache]" : "",
                response->coalesced ? " [coalesced]" : "");
  }

  if (want_stats) {
    pmcast::Result<pmcast::net::ServerWireStats> stats = client.stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().to_string().c_str());
      return 1;
    }
    print_stats(*stats);
  }
  if (want_trace) {
    pmcast::Result<pmcast::net::ServerWireTrace> trace = client.trace();
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
      return 1;
    }
    print_trace(*trace);
  }
  return failed == 0 ? 0 : 1;
}
