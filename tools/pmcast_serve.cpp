/// \file pmcast_serve.cpp
/// The stock pmcast daemon binary: bind the resident socket server
/// (pmcast/server.hpp) around one long-lived pmcast::Service and serve the
/// binary wire protocol until SIGTERM/SIGINT triggers a graceful drain.
///
/// Usage:
///   pmcast_serve [--host H] [--port P] [--port-file PATH]
///                [--threads N] [--cache N] [--deadline-ms MS]
///                [--qps Q] [--burst B] [--max-in-flight N]
///                [--global-max-in-flight N] [--drain-timeout-ms MS]
///                [--idle-timeout-ms MS] [--read-timeout-ms MS]
///                [--max-output-buffer BYTES] [--brownout]
///
/// --port 0 (the default) binds an ephemeral port; --port-file writes the
/// bound port to PATH once listening, so scripts can start the daemon and
/// discover where it landed without a race.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pmcast/server.hpp"

namespace {

pmcast::net::Server* g_server = nullptr;

void handle_shutdown_signal(int) {
  // request_drain() is async-signal-safe: an atomic store + eventfd write.
  if (g_server != nullptr) g_server->request_drain();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--port-file PATH] [--threads N]\n"
      "          [--cache N] [--deadline-ms MS] [--qps Q] [--burst B]\n"
      "          [--max-in-flight N] [--global-max-in-flight N]\n"
      "          [--drain-timeout-ms MS] [--idle-timeout-ms MS]\n"
      "          [--read-timeout-ms MS] [--max-output-buffer BYTES]\n"
      "          [--brownout]\n"
      "Serve the pmcast portfolio engine over the binary wire protocol.\n"
      "SIGTERM/SIGINT drain gracefully: in-flight requests finish (or are\n"
      "cancelled after the drain timeout) and every response is flushed.\n"
      "--brownout admits deadline-infeasible requests on the cheap\n"
      "heuristic allowlist instead of shedding them outright.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pmcast::net::ServerOptions options;
  options.service.threads = 4;
  options.service.cache_capacity = 4096;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<std::uint16_t>(
          std::strtoul(next_value("--port"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = next_value("--port-file");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.service.threads =
          static_cast<int>(std::strtol(next_value("--threads"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      options.service.cache_capacity = static_cast<std::size_t>(
          std::strtoull(next_value("--cache"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      options.service.default_deadline_ms =
          std::strtod(next_value("--deadline-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--qps") == 0) {
      options.default_quota.qps = std::strtod(next_value("--qps"), nullptr);
    } else if (std::strcmp(argv[i], "--burst") == 0) {
      options.default_quota.burst =
          std::strtod(next_value("--burst"), nullptr);
    } else if (std::strcmp(argv[i], "--max-in-flight") == 0) {
      options.default_quota.max_in_flight = static_cast<int>(
          std::strtol(next_value("--max-in-flight"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--global-max-in-flight") == 0) {
      options.global_max_in_flight = static_cast<int>(
          std::strtol(next_value("--global-max-in-flight"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0) {
      options.drain_timeout_ms =
          std::strtod(next_value("--drain-timeout-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      options.idle_timeout_ms =
          std::strtod(next_value("--idle-timeout-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--read-timeout-ms") == 0) {
      options.read_timeout_ms =
          std::strtod(next_value("--read-timeout-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--max-output-buffer") == 0) {
      options.max_output_buffer_bytes = static_cast<std::size_t>(
          std::strtoull(next_value("--max-output-buffer"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--brownout") == 0) {
      options.brownout.enabled = true;
    } else {
      return usage(argv[0]);
    }
  }

  pmcast::net::Server server(std::move(options));
  pmcast::Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "pmcast_serve: %s\n", started.to_string().c_str());
    return 1;
  }

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pmcast_serve: cannot write port file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
  }

  g_server = &server;
  struct sigaction action = {};
  action.sa_handler = handle_shutdown_signal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::printf("pmcast_serve: listening on port %u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  server.run();  // blocks until a drain completes

  pmcast::net::ServerStats stats = server.stats();
  std::printf("pmcast_serve: drained; %llu responses, %llu errors, "
              "%llu shed\n",
              static_cast<unsigned long long>(stats.responses_sent),
              static_cast<unsigned long long>(stats.errors_sent),
              static_cast<unsigned long long>(
                  stats.shed_qps + stats.shed_in_flight +
                  stats.shed_deadline + stats.shed_shutdown));
  g_server = nullptr;
  return 0;
}
